//! Network topology and data-transfer simulation.
//!
//! The paper's testbed (Figure 2) mixes shared 10 Mbit/s Ethernet
//! segments, a non-dedicated FDDI ring, and a PCL↔SDSC gateway. What
//! matters to the application is (a) which hosts share a medium, so that
//! concurrent border exchanges contend with each other, and (b) how much
//! of each medium's capacity background traffic has already consumed.
//!
//! We model every shared medium as a [`Link`] with a capacity, a latency
//! and a background-load availability process. Hosts attach to
//! *segments* (links designated as attachment points); a route between
//! two hosts is the sequence of links a message crosses. Transfers are
//! simulated with a fluid-flow model: at any instant, each link divides
//! its currently-available capacity equally among the flows crossing it,
//! and a flow progresses at the minimum share along its route. Rates are
//! recomputed whenever a flow starts, a flow finishes, or a link's
//! availability changes, so the simulation is exact for piecewise-
//! constant availability.

use crate::error::SimError;
use crate::host::{Host, HostId, HostSpec};
use crate::load::{LoadModel, StepSeries};
use crate::time::SimTime;
use std::collections::BTreeMap;

/// Identifier of a link (shared medium) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Identifier of a segment (a link hosts may attach to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// Static description of a link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name, e.g. `"pcl-ethernet-a"`.
    pub name: String,
    /// Capacity in MB/s (megabytes per second).
    pub bandwidth_mbps: f64,
    /// One-way latency.
    pub latency: SimTime,
    /// Background traffic model; availability scales usable capacity.
    pub load: LoadModel,
}

impl LinkSpec {
    /// A dedicated link with full capacity.
    pub fn dedicated(name: &str, bandwidth_mbps: f64, latency: SimTime) -> Self {
        LinkSpec {
            name: name.to_string(),
            bandwidth_mbps,
            latency,
            load: LoadModel::Constant(1.0),
        }
    }

    /// A shared link with the given background-load model.
    pub fn shared(name: &str, bandwidth_mbps: f64, latency: SimTime, load: LoadModel) -> Self {
        LinkSpec {
            name: name.to_string(),
            bandwidth_mbps,
            latency,
            load,
        }
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.bandwidth_mbps <= 0.0 {
            return Err(SimError::NonPositive {
                what: "link bandwidth",
                value: self.bandwidth_mbps,
            });
        }
        Ok(())
    }
}

/// A link instantiated in a simulation.
#[derive(Debug, Clone)]
pub struct Link {
    /// Identifier within the topology.
    pub id: LinkId,
    /// Static description.
    pub spec: LinkSpec,
    avail: StepSeries,
}

impl Link {
    /// The realized availability process for background traffic.
    pub fn availability(&self) -> &StepSeries {
        &self.avail
    }

    /// Override the availability process (tests / pinned replays).
    pub fn set_availability(&mut self, avail: StepSeries) {
        self.avail = avail;
    }

    /// Capacity usable by the application at time `t`, in MB/s.
    pub fn capacity_at(&self, t: SimTime) -> f64 {
        self.spec.bandwidth_mbps * self.avail.value_at(t)
    }

    /// Mean usable capacity over a window, in MB/s.
    pub fn mean_capacity(&self, from: SimTime, to: SimTime) -> f64 {
        self.spec.bandwidth_mbps * self.avail.mean(from, to)
    }
}

/// Routing between segments: the ordered list of links a message
/// traverses between two *distinct* segments, excluding the endpoint
/// segments themselves (those are always included automatically).
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    via: BTreeMap<(usize, usize), Vec<LinkId>>,
}

impl RouteTable {
    /// Register a route between two *distinct* segments through
    /// intermediate links. The reverse direction is registered
    /// automatically.
    ///
    /// Rejects self-routes ([`SimError::SelfRoute`]) — same-segment
    /// traffic always crosses exactly the segment's own link — and
    /// re-registration in either direction
    /// ([`SimError::DuplicateRoute`]): both were historically accepted
    /// silently, letting one builder call shadow another's routing
    /// without any diagnostic.
    pub fn add(&mut self, a: SegmentId, b: SegmentId, via: Vec<LinkId>) -> Result<(), SimError> {
        if a == b {
            return Err(SimError::SelfRoute { segment: a.0 });
        }
        if self.via.contains_key(&(a.0, b.0)) || self.via.contains_key(&(b.0, a.0)) {
            return Err(SimError::DuplicateRoute { a: a.0, b: b.0 });
        }
        let mut rev = via.clone();
        rev.reverse();
        self.via.insert((a.0, b.0), via);
        self.via.insert((b.0, a.0), rev);
        Ok(())
    }

    /// Intermediate links between two segments, if registered.
    pub fn via(&self, a: SegmentId, b: SegmentId) -> Option<&[LinkId]> {
        self.via.get(&(a.0, b.0)).map(|v| v.as_slice())
    }

    /// Number of registered directed entries.
    pub fn len(&self) -> usize {
        self.via.len()
    }

    /// True when no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.via.is_empty()
    }
}

/// A borrowed, allocation-free view of a route: up to five contiguous
/// link-id slices (source segment link, up-path, inter-cluster path,
/// down-path, destination segment link) in traversal order. Produced by
/// [`Topology::route_ref`] from the instantiation-time route cache, so
/// hot-loop lookups ([`Topology::transfer_estimate`] per chunk) never
/// allocate.
#[derive(Debug, Clone, Copy)]
pub struct RouteRef<'a> {
    parts: [&'a [LinkId]; 5],
}

impl<'a> RouteRef<'a> {
    /// The empty route (same-host transfers cross no link).
    pub fn empty() -> RouteRef<'static> {
        RouteRef { parts: [&[]; 5] }
    }

    /// Number of links crossed.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// True for same-host routes that cross no link.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// The links in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + 'a {
        self.parts.into_iter().flatten().copied()
    }

    /// Materialize into an owned `Vec` (engine setup, diagnostics).
    pub fn to_vec(&self) -> Vec<LinkId> {
        let mut v = Vec::with_capacity(self.len());
        v.extend(self.iter());
        v
    }

    /// True when the route crosses `link`.
    pub fn contains(&self, link: LinkId) -> bool {
        self.iter().any(|l| l == link)
    }
}

/// A contiguous span of the route-cache arena plus the precomputed sum
/// of its links' latencies (`None` when the route names a link outside
/// the topology; latency queries then fall back to the erroring path).
#[derive(Debug, Clone, Copy)]
struct RouteSpan {
    off: u32,
    len: u32,
    lat: Option<SimTime>,
}

/// Segment-pair route index built once at instantiation.
#[derive(Debug, Clone)]
enum PairIndex {
    /// Row-major `segments x segments` table of via-routes.
    Dense(Vec<Option<RouteSpan>>),
    /// Clusters-of-clusters compression: per-segment up/down routes to
    /// the cluster root plus one route per cluster pair — each
    /// cluster-level route is stored once, not per leaf-segment pair.
    Hier {
        /// Segment -> normalized cluster index.
        cluster_of: Vec<usize>,
        /// Cluster -> its root segment.
        roots: Vec<usize>,
        /// Segment -> via(segment, root); empty span for roots.
        up: Vec<Option<RouteSpan>>,
        /// Segment -> via(root, segment); empty span for roots.
        down: Vec<Option<RouteSpan>>,
        /// Row-major `clusters x clusters` via(root_a, root_b);
        /// diagonal entries are empty spans.
        inter: Vec<Option<RouteSpan>>,
    },
}

/// Precomputed segment-pair routing: one arena of link ids plus an
/// index, so [`Topology::route_ref`] is an O(1) lookup with no
/// per-call allocation (the pre-cache path did a `BTreeMap` probe and
/// built a fresh `Vec` per call).
#[derive(Debug, Clone)]
struct RouteCache {
    arena: Vec<LinkId>,
    index: PairIndex,
    n_segments: usize,
}

impl RouteCache {
    fn build(
        routes: &RouteTable,
        segments: &[LinkId],
        links: &[LinkSpec],
        hints: Option<(Vec<usize>, Vec<usize>)>,
    ) -> RouteCache {
        let n = segments.len();
        let mut arena: Vec<LinkId> = Vec::new();
        let push = |arena: &mut Vec<LinkId>, via: &[LinkId]| -> RouteSpan {
            let off = arena.len() as u32;
            arena.extend_from_slice(via);
            let mut lat = Some(SimTime::ZERO);
            for l in via {
                lat = match (lat, links.get(l.0)) {
                    (Some(acc), Some(spec)) => Some(acc + spec.latency),
                    _ => None,
                };
            }
            RouteSpan {
                off,
                len: via.len() as u32,
                lat,
            }
        };
        let index = match hints {
            Some((cluster_of, roots)) => {
                let nc = roots.len();
                let empty = RouteSpan {
                    off: 0,
                    len: 0,
                    lat: Some(SimTime::ZERO),
                };
                let mut up = vec![None; n];
                let mut down = vec![None; n];
                for s in 0..n {
                    let r = roots[cluster_of[s]];
                    if s == r {
                        up[s] = Some(empty);
                        down[s] = Some(empty);
                        continue;
                    }
                    if let Some(via) = routes.via(SegmentId(s), SegmentId(r)) {
                        up[s] = Some(push(&mut arena, via));
                    }
                    if let Some(via) = routes.via(SegmentId(r), SegmentId(s)) {
                        down[s] = Some(push(&mut arena, via));
                    }
                }
                let mut inter = vec![None; nc * nc];
                for (ca, &ra) in roots.iter().enumerate() {
                    for (cb, &rb) in roots.iter().enumerate() {
                        inter[ca * nc + cb] = if ca == cb {
                            Some(empty)
                        } else {
                            routes
                                .via(SegmentId(ra), SegmentId(rb))
                                .map(|via| push(&mut arena, via))
                        };
                    }
                }
                PairIndex::Hier {
                    cluster_of,
                    roots,
                    up,
                    down,
                    inter,
                }
            }
            None => {
                let mut pairs = vec![None; n * n];
                for (&(a, b), via) in &routes.via {
                    if a < n && b < n {
                        pairs[a * n + b] = Some(push(&mut arena, via.as_slice()));
                    }
                }
                PairIndex::Dense(pairs)
            }
        };
        RouteCache {
            arena,
            index,
            n_segments: n,
        }
    }

    fn slice(&self, span: &RouteSpan) -> &[LinkId] {
        &self.arena[span.off as usize..(span.off + span.len) as usize]
    }

    /// Connecting-link parts and precomputed latency for a *distinct*
    /// in-range segment pair; `None` when the pair has no route.
    fn via_parts(&self, a: usize, b: usize) -> Option<([&[LinkId]; 3], Option<SimTime>)> {
        match &self.index {
            PairIndex::Dense(pairs) => {
                let span = pairs[a * self.n_segments + b].as_ref()?;
                Some(([self.slice(span), &[], &[]], span.lat))
            }
            PairIndex::Hier {
                cluster_of,
                roots,
                up,
                down,
                inter,
            } => {
                let nc = roots.len();
                let u = up[a].as_ref()?;
                let m = inter[cluster_of[a] * nc + cluster_of[b]].as_ref()?;
                let d = down[b].as_ref()?;
                let lat = match (u.lat, m.lat, d.lat) {
                    (Some(x), Some(y), Some(z)) => Some(x + y + z),
                    _ => None,
                };
                Some(([self.slice(u), self.slice(m), self.slice(d)], lat))
            }
        }
    }
}

/// Normalized hierarchy hints: per-segment cluster index, then the
/// root segment of each cluster.
type HierHints = (Vec<usize>, Vec<usize>);

/// Check hierarchical-routing hints for completeness. `Ok(None)` when
/// no hints were given (dense cache); `Ok(Some((cluster_of, roots)))`
/// with normalized cluster indices when complete; `Err` when partial
/// or inconsistent.
fn hier_hints(
    n_segments: usize,
    cluster_of: &BTreeMap<usize, usize>,
    cluster_roots: &BTreeMap<usize, usize>,
) -> Result<Option<HierHints>, SimError> {
    if cluster_of.is_empty() && cluster_roots.is_empty() {
        return Ok(None);
    }
    let mut ids: Vec<usize> = cluster_of.values().copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let mut of = vec![0usize; n_segments];
    for (s, slot) in of.iter_mut().enumerate() {
        let Some(&c) = cluster_of.get(&s) else {
            return Err(SimError::Invalid(format!(
                "hierarchical routing hints are incomplete: segment {s} has no cluster"
            )));
        };
        *slot = ids.binary_search(&c).map_err(|_| {
            SimError::Invalid(format!("segment {s} names an unregistered cluster {c}"))
        })?;
    }
    let mut roots = Vec::with_capacity(ids.len());
    for &c in &ids {
        let Some(&r) = cluster_roots.get(&c) else {
            return Err(SimError::Invalid(format!(
                "hierarchical routing hints are incomplete: cluster {c} has no root segment"
            )));
        };
        if r >= n_segments {
            return Err(SimError::Invalid(format!(
                "cluster {c} root segment {r} is out of range"
            )));
        }
        if cluster_of.get(&r) != Some(&c) {
            return Err(SimError::Invalid(format!(
                "cluster {c} root segment {r} is tagged with a different cluster"
            )));
        }
        roots.push(r);
    }
    for &c in cluster_roots.keys() {
        if ids.binary_search(&c).is_err() {
            return Err(SimError::Invalid(format!(
                "cluster {c} has a root but no member segments"
            )));
        }
    }
    Ok(Some((of, roots)))
}

/// Builder for a [`Topology`]: collect specs, then instantiate with a
/// horizon and seed to realize all load processes.
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    links: Vec<LinkSpec>,
    segments: Vec<LinkId>,
    hosts: Vec<HostSpec>,
    routes: RouteTable,
    /// Inter-segment connections for automatic routing:
    /// `(segment, segment, connecting link)`.
    edges: Vec<(SegmentId, SegmentId, LinkId)>,
    /// Hierarchical-routing hints: segment -> cluster index.
    cluster_of: BTreeMap<usize, usize>,
    /// Hierarchical-routing hints: cluster index -> root segment.
    cluster_roots: BTreeMap<usize, usize>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a bare link (gateway, WAN hop) that is not an attachment point.
    pub fn add_link(&mut self, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(spec);
        id
    }

    /// Add a segment: a link that hosts can attach to.
    pub fn add_segment(&mut self, spec: LinkSpec) -> SegmentId {
        let link = self.add_link(spec);
        let id = SegmentId(self.segments.len());
        self.segments.push(link);
        id
    }

    /// Add a host attached to a previously created segment.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len());
        self.hosts.push(spec);
        id
    }

    /// Register intermediate links between two distinct segments.
    /// Rejects self-routes and duplicate registrations (see
    /// [`RouteTable::add`]).
    pub fn add_route(
        &mut self,
        a: SegmentId,
        b: SegmentId,
        via: Vec<LinkId>,
    ) -> Result<(), SimError> {
        self.routes.add(a, b, via)
    }

    /// Tag a segment as belonging to a routing cluster. When every
    /// segment is tagged and every named cluster has a root (see
    /// [`TopologyBuilder::set_cluster_root`]),
    /// [`TopologyBuilder::instantiate`] builds a *hierarchical* route
    /// cache — per-segment routes to the cluster root plus one route
    /// per cluster pair — instead of a dense segment-pair table. The
    /// hints assert that the route between any two segments is exactly
    /// `up-to-root ++ root-to-root ++ root-to-segment`; tree-shaped
    /// clusters-of-clusters topologies (`metasim::topogen`) guarantee
    /// this by construction. Incomplete hints are rejected at
    /// instantiation.
    pub fn set_segment_cluster(&mut self, seg: SegmentId, cluster: usize) {
        self.cluster_of.insert(seg.0, cluster);
    }

    /// Declare the root segment of a routing cluster.
    pub fn set_cluster_root(&mut self, cluster: usize, root: SegmentId) {
        self.cluster_roots.insert(cluster, root.0);
    }

    /// Drop all hierarchical-routing hints. Differential tests use this
    /// to compare hinted and unhinted builds of the same topology.
    pub fn clear_cluster_hints(&mut self) {
        self.cluster_of.clear();
        self.cluster_roots.clear();
    }

    /// Declare a connecting link between two segments and let the
    /// builder derive multi-hop routes automatically (fewest-hops BFS,
    /// run at [`TopologyBuilder::instantiate`]). Explicitly registered
    /// routes always win over derived ones.
    pub fn connect(&mut self, a: SegmentId, b: SegmentId, spec: LinkSpec) -> LinkId {
        let link = self.add_link(spec);
        self.edges.push((a, b, link));
        link
    }

    /// Derive fewest-hop routes for every segment pair reachable over
    /// declared [`TopologyBuilder::connect`] edges that has no explicit
    /// route yet. Hierarchically hinted builds derive only
    /// segment<->cluster-root and root<->root routes — the route cache
    /// composes every other pair — keeping the table
    /// O(segments + clusters^2) instead of O(segments^2).
    fn derive_routes(&mut self) -> Result<(), SimError> {
        use std::collections::VecDeque;
        let n = self.segments.len();
        let hints = hier_hints(n, &self.cluster_of, &self.cluster_roots)?;
        // Adjacency over segments.
        let mut adj: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); n];
        for &(a, b, l) in &self.edges {
            if a.0 < n && b.0 < n {
                adj[a.0].push((b.0, l));
                adj[b.0].push((a.0, l));
            }
        }
        let sources: Vec<usize> = match &hints {
            Some((_, roots)) => {
                let mut s = roots.clone();
                s.sort_unstable();
                s.dedup();
                s
            }
            None => (0..n).collect(),
        };
        let mut is_root = vec![false; n];
        if let Some((_, roots)) = &hints {
            for &r in roots {
                is_root[r] = true;
            }
        }
        for src in sources {
            // BFS from src.
            let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[src] = true;
            let mut q = VecDeque::from([src]);
            while let Some(u) = q.pop_front() {
                for &(v, l) in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        prev[v] = Some((u, l));
                        q.push_back(v);
                    }
                }
            }
            for (dst, &reached) in seen.iter().enumerate() {
                if dst == src
                    || !reached
                    || self.routes.via(SegmentId(src), SegmentId(dst)).is_some()
                {
                    continue;
                }
                if let Some((of, _)) = &hints {
                    // From a root, only members of its own cluster and
                    // other roots matter; the cache composes the rest.
                    if !is_root[dst] && of[dst] != of[src] {
                        continue;
                    }
                }
                // Reconstruct the link path dst -> src, then reverse.
                // `seen[dst]` implies an unbroken predecessor chain; if
                // that ever fails to hold, skip the pair (route() will
                // report NoRoute) rather than aborting the build.
                let mut via = Vec::new();
                let mut cur = dst;
                let mut complete = true;
                while cur != src {
                    match prev[cur] {
                        Some((p, l)) => {
                            via.push(l);
                            cur = p;
                        }
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                via.reverse();
                self.routes.add(SegmentId(src), SegmentId(dst), via)?;
            }
        }
        Ok(())
    }

    /// Realize every load model and produce an immutable topology.
    ///
    /// Per-entity seeds are derived from `seed` so that each host and
    /// link gets an independent but reproducible availability process.
    pub fn instantiate(mut self, horizon: SimTime, seed: u64) -> Result<Topology, SimError> {
        self.derive_routes()?;
        let hints = hier_hints(self.segments.len(), &self.cluster_of, &self.cluster_roots)?;
        let cache = RouteCache::build(&self.routes, &self.segments, &self.links, hints);
        let mut links = Vec::with_capacity(self.links.len());
        for (i, spec) in self.links.into_iter().enumerate() {
            spec.validate()?;
            let avail = spec.load.realize(
                horizon,
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(i as u64 + 1),
            );
            links.push(Link {
                id: LinkId(i),
                spec,
                avail,
            });
        }
        let mut hosts = Vec::with_capacity(self.hosts.len());
        for (i, spec) in self.hosts.into_iter().enumerate() {
            if spec.segment.0 >= self.segments.len() {
                return Err(SimError::UnknownSegment(spec.segment.0));
            }
            let h = Host::instantiate(
                HostId(i),
                spec,
                horizon,
                seed.wrapping_add(0xD1B5_4A32_D192_ED03)
                    .wrapping_mul(i as u64 + 1),
            )?;
            hosts.push(h);
        }
        Ok(Topology {
            links,
            segments: self.segments,
            hosts,
            routes: self.routes,
            cache,
            horizon,
        })
    }
}

/// An instantiated metacomputing system: hosts, links and routes, with
/// all availability processes realized.
#[derive(Debug, Clone)]
pub struct Topology {
    links: Vec<Link>,
    segments: Vec<LinkId>,
    hosts: Vec<Host>,
    routes: RouteTable,
    cache: RouteCache,
    horizon: SimTime,
}

impl Topology {
    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The horizon the availability processes were realized over.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> Result<&Host, SimError> {
        self.hosts.get(id.0).ok_or(SimError::UnknownHost(id.0))
    }

    /// Mutable host access (tests / pinned replays).
    pub fn host_mut(&mut self, id: HostId) -> Result<&mut Host, SimError> {
        self.hosts.get_mut(id.0).ok_or(SimError::UnknownHost(id.0))
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> Result<&Link, SimError> {
        self.links.get(id.0).ok_or(SimError::UnknownLink(id.0))
    }

    /// Mutable link access (tests / pinned replays).
    pub fn link_mut(&mut self, id: LinkId) -> Result<&mut Link, SimError> {
        self.links.get_mut(id.0).ok_or(SimError::UnknownLink(id.0))
    }

    /// The link implementing a segment.
    pub fn segment_link(&self, seg: SegmentId) -> Result<LinkId, SimError> {
        self.segments
            .get(seg.0)
            .copied()
            .ok_or(SimError::UnknownSegment(seg.0))
    }

    /// Number of segments in the topology.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn segment_link_slice(&self, seg: SegmentId) -> Result<&[LinkId], SimError> {
        self.segments
            .get(seg.0)
            .map(std::slice::from_ref)
            .ok_or(SimError::UnknownSegment(seg.0))
    }

    /// Full route (ordered links) between two hosts as a borrowed,
    /// allocation-free view into the instantiation-time route cache.
    /// Same-host routes are empty; same-segment routes cross only the
    /// segment link.
    pub fn route_ref(&self, from: HostId, to: HostId) -> Result<RouteRef<'_>, SimError> {
        if from == to {
            return Ok(RouteRef::empty());
        }
        let sa = self.host(from)?.spec.segment;
        let sb = self.host(to)?.spec.segment;
        let la = self.segment_link_slice(sa)?;
        if sa == sb {
            return Ok(RouteRef {
                parts: [la, &[], &[], &[], &[]],
            });
        }
        let lb = self.segment_link_slice(sb)?;
        let (via, _) = self.cache.via_parts(sa.0, sb.0).ok_or(SimError::NoRoute {
            from: from.0,
            to: to.0,
        })?;
        Ok(RouteRef {
            parts: [la, via[0], via[1], via[2], lb],
        })
    }

    /// Full route (ordered links) between two hosts as an owned `Vec`.
    /// Backed by the same cache as [`Topology::route_ref`]; prefer the
    /// borrowing variant in hot loops.
    pub fn route(&self, from: HostId, to: HostId) -> Result<Vec<LinkId>, SimError> {
        Ok(self.route_ref(from, to)?.to_vec())
    }

    /// [`Topology::route`] resolved through the explicit/derived route
    /// *table* — the pre-cache lookup path, kept as the differential-
    /// testing oracle for the cache. On hierarchically hinted
    /// topologies interior segment pairs are absent from the table, so
    /// this may report [`SimError::NoRoute`] where the cache composes
    /// a route.
    pub fn route_uncached(&self, from: HostId, to: HostId) -> Result<Vec<LinkId>, SimError> {
        if from == to {
            return Ok(Vec::new());
        }
        let sa = self.host(from)?.spec.segment;
        let sb = self.host(to)?.spec.segment;
        let la = self.segment_link(sa)?;
        if sa == sb {
            return Ok(vec![la]);
        }
        let lb = self.segment_link(sb)?;
        let via = self.routes.via(sa, sb).ok_or(SimError::NoRoute {
            from: from.0,
            to: to.0,
        })?;
        let mut path = Vec::with_capacity(via.len() + 2);
        path.push(la);
        path.extend_from_slice(via);
        path.push(lb);
        Ok(path)
    }

    /// Cached full route between two segments (their own links
    /// included), or `Ok(None)` when the pair is unreachable.
    /// `validate` uses this for O(segments^2) reachability instead of
    /// materializing a route `Vec` per host pair.
    pub fn segment_route(
        &self,
        a: SegmentId,
        b: SegmentId,
    ) -> Result<Option<RouteRef<'_>>, SimError> {
        let la = self.segment_link_slice(a)?;
        if a == b {
            return Ok(Some(RouteRef {
                parts: [la, &[], &[], &[], &[]],
            }));
        }
        let lb = self.segment_link_slice(b)?;
        Ok(self.cache.via_parts(a.0, b.0).map(|(via, _)| RouteRef {
            parts: [la, via[0], via[1], via[2], lb],
        }))
    }

    /// Total one-way latency along the route between two hosts, using
    /// the cache's precomputed per-route latency sums.
    pub fn route_latency(&self, from: HostId, to: HostId) -> Result<SimTime, SimError> {
        if from == to {
            return Ok(SimTime::ZERO);
        }
        let sa = self.host(from)?.spec.segment;
        let sb = self.host(to)?.spec.segment;
        let la = self.link(self.segment_link(sa)?)?.spec.latency;
        if sa == sb {
            return Ok(la);
        }
        let lb = self.link(self.segment_link(sb)?)?.spec.latency;
        match self.cache.via_parts(sa.0, sb.0) {
            Some((_, Some(via_lat))) => Ok(la + via_lat + lb),
            Some((parts, None)) => {
                // The via names a link outside the topology: fall back
                // to the per-link walk, which reports UnknownLink.
                let mut total = la + lb;
                for part in parts {
                    for l in part {
                        total += self.link(*l)?.spec.latency;
                    }
                }
                Ok(total)
            }
            None => Err(SimError::NoRoute {
                from: from.0,
                to: to.0,
            }),
        }
    }

    /// Contention-free estimate of the time to move `mb` megabytes from
    /// `from` to `to` starting at `at`: route latency plus transfer at
    /// the bottleneck link's *current* usable capacity. This is the
    /// closed-form model a scheduler's Performance Estimator uses; the
    /// fluid-flow simulator is the ground truth it is judged against.
    /// Walks the cached [`Topology::route_ref`], so per-chunk calls in
    /// executor hot loops do not allocate.
    pub fn transfer_estimate(
        &self,
        from: HostId,
        to: HostId,
        mb: f64,
        at: SimTime,
    ) -> Result<SimTime, SimError> {
        let route = self.route_ref(from, to)?;
        if route.is_empty() {
            return Ok(SimTime::ZERO);
        }
        let mut latency = SimTime::ZERO;
        let mut bottleneck = f64::INFINITY;
        for l in route.iter() {
            let link = self.link(l)?;
            latency += link.spec.latency;
            bottleneck = bottleneck.min(link.capacity_at(at));
        }
        if bottleneck <= 0.0 {
            return Err(SimError::NeverCompletes { work: mb });
        }
        Ok(latency + SimTime::from_secs_f64(mb / bottleneck))
    }
}

/// A single data transfer to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferReq {
    /// Source host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Payload size in MB.
    pub mb: f64,
    /// Time the transfer is initiated.
    pub start: SimTime,
    /// Caller-defined tag for correlating results.
    pub tag: usize,
}

/// Completion record for a simulated transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferResult {
    /// The request's tag.
    pub tag: usize,
    /// Time the last byte is delivered (including route latency).
    pub delivered: SimTime,
}

#[derive(Clone)]
struct ActiveFlow {
    tag: usize,
    route: Vec<LinkId>,
    remaining_mb: f64,
    latency: SimTime,
}

/// Per-flow state for the incremental (dirty-set) engine. `remaining_mb`
/// is *lazy*: it is settled to the current time only when the flow's
/// rate actually changes, so untouched flows cost nothing per event.
struct FlowState {
    req_idx: usize,
    route: Vec<LinkId>,
    remaining_mb: f64,
    rate: f64,
    last_update: SimTime,
    latency: SimTime,
    done_ev: Option<simcore::EventId>,
    active: bool,
}

/// Events of the incremental transfer engine.
#[derive(Clone, Copy)]
enum NetEv {
    /// A flow's scheduled completion (index into the flow table).
    Finish(usize),
    /// A link's availability steps to a new value (link index).
    Avail(usize),
    /// A pending flow's start time is reached (index into the flow
    /// table; flows are stored in admission order).
    Arrive(usize),
}

/// Simulate a batch of transfers through the topology with full
/// bandwidth contention. Returns one result per request, in request
/// order. Same-host transfers complete instantly at their start time.
pub fn simulate_transfers(
    topo: &Topology,
    reqs: &[TransferReq],
) -> Result<Vec<TransferResult>, SimError> {
    simulate_transfers_with_sink(topo, reqs, &mut crate::simtrace::NoopSink)
}

/// [`simulate_transfers`], emitting [`TraceEvent::TransferStart`] when
/// a flow is admitted to the network and
/// [`TraceEvent::TransferFinish`] (with its achieved-over-nominal
/// contention share) when it is delivered. Same-host and zero-size
/// transfers never touch the network and emit nothing.
///
/// [`TraceEvent::TransferStart`]: crate::simtrace::TraceEvent::TransferStart
/// [`TraceEvent::TransferFinish`]: crate::simtrace::TraceEvent::TransferFinish
pub fn simulate_transfers_with_sink(
    topo: &Topology,
    reqs: &[TransferReq],
    sink: &mut dyn crate::simtrace::EventSink,
) -> Result<Vec<TransferResult>, SimError> {
    simulate_transfers_counting(topo, reqs, sink).map(|(results, _)| results)
}

/// The incremental fluid-flow engine: [`simulate_transfers_with_sink`]
/// plus a count of processed simulation events, the numerator of the
/// events/sec benchmark. Both engines count the same metric — flow
/// arrivals, flow completions, and availability change points on links
/// carrying at least one flow just before the change — so their counts
/// agree up to timestamp-coincidence rounding (see
/// [`simulate_transfers_reference`]).
///
/// Instead of recomputing every flow's share at every event (the
/// [`simulate_transfers_reference`] baseline), this engine keeps a
/// per-link table of crossing flows and an indexed, cancellable event
/// queue ([`simcore::EventQueue`]): each event marks the links it
/// touches dirty, and only flows crossing a dirty link get their
/// progress settled, their share recomputed, and their completion event
/// rescheduled. Per-event cost is O(affected · log n), not O(flows).
///
/// Determinism: events at one timestamp are processed finishes →
/// availability changes → arrivals (each sub-sorted by index), mirroring
/// the reference loop's retire-before-admit order, and dirty-set drains
/// are sorted, so identical inputs give identical traces.
pub fn simulate_transfers_counting(
    topo: &Topology,
    reqs: &[TransferReq],
    sink: &mut dyn crate::simtrace::EventSink,
) -> Result<(Vec<TransferResult>, u64), SimError> {
    use crate::simtrace::TraceEvent;
    use simcore::{DirtySet, EventQueue};
    const EPS_MB: f64 = 1e-12;

    let mut results: Vec<Option<TransferResult>> = vec![None; reqs.len()];

    // Resolve routes up front and dispatch trivial local transfers.
    let mut pending: Vec<(usize, Vec<LinkId>, SimTime)> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let route = topo.route(r.from, r.to)?;
        if route.is_empty() || r.mb <= 0.0 {
            results[i] = Some(TransferResult {
                tag: r.tag,
                delivered: r.start,
            });
            continue;
        }
        pending.push((i, route, r.start));
    }
    // Earliest arrivals first; stable on request order.
    pending.sort_by_key(|&(i, _, start)| (start, i));

    // Flow table in admission order.
    let mut flows: Vec<FlowState> = Vec::with_capacity(pending.len());
    for (i, route, start) in pending {
        let r = &reqs[i];
        let latency = topo.route_latency(r.from, r.to)?;
        flows.push(FlowState {
            req_idx: i,
            route,
            remaining_mb: r.mb,
            rate: 0.0,
            last_update: start,
            latency,
            done_ev: None,
            active: false,
        });
    }

    let mut live_flows = flows.len();
    if live_flows == 0 {
        return finish_results(results).map(|r| (r, 0));
    }

    let mut q: EventQueue<SimTime, NetEv> = EventQueue::with_capacity(flows.len() + 16);
    for (fi, f) in flows.iter().enumerate() {
        q.schedule(f.last_update, NetEv::Arrive(fi));
    }

    // Availability-change chains are armed lazily, per link, only while
    // the link carries at least one flow: a change on an idle link
    // cannot affect any rate, so it is neither scheduled nor counted.
    // (The chains used to start at the first arrival for *every* used
    // link, generating counted no-op events on idle links — the
    // historical inc-vs-ref event-count gap.)
    let mut avail_ev: Vec<Option<simcore::EventId>> = vec![None; topo.links().len()];

    // Per-link list of active crossing flows; lengths are the share
    // denominators.
    let mut link_flows: Vec<Vec<usize>> = vec![Vec::new(); topo.links().len()];
    let mut dirty = DirtySet::with_universe(topo.links().len());

    let mut ev_count: u64 = 0;
    let mut finishes: Vec<usize> = Vec::new();
    let mut avails: Vec<usize> = Vec::new();
    let mut arrivals: Vec<usize> = Vec::new();

    while live_flows > 0 {
        let Some(t) = q.peek_time() else {
            // Nothing can ever happen again but flows are unfinished:
            // they are stalled on dead links forever.
            let stuck: f64 = flows
                .iter()
                .filter(|f| f.active)
                .map(|f| f.remaining_mb)
                .sum();
            return Err(SimError::NeverCompletes { work: stuck });
        };

        // Drain the whole batch at this timestamp, then process in the
        // reference order: retire finishes, apply availability steps,
        // admit arrivals, and only then recompute dirty shares once.
        finishes.clear();
        avails.clear();
        arrivals.clear();
        while q.peek_time() == Some(t) {
            let Some((_, _, ev)) = q.pop() else { break };
            ev_count += 1;
            match ev {
                NetEv::Finish(fi) => finishes.push(fi),
                NetEv::Avail(li) => {
                    // The drained handle is dead; clear it so the
                    // finish/arrival handlers below re-arm correctly.
                    avail_ev[li] = None;
                    avails.push(li);
                }
                NetEv::Arrive(fi) => arrivals.push(fi),
            }
        }
        finishes.sort_unstable_by_key(|&fi| flows[fi].req_idx);
        avails.sort_unstable();
        arrivals.sort_unstable();

        for &fi in &finishes {
            live_flows -= 1;
            flows[fi].active = false;
            flows[fi].done_ev = None;
            flows[fi].remaining_mb = 0.0;
            for k in 0..flows[fi].route.len() {
                let li = flows[fi].route[k].0;
                if let Some(pos) = link_flows[li].iter().position(|&x| x == fi) {
                    link_flows[li].remove(pos);
                }
                if link_flows[li].is_empty() {
                    // Last flow gone: disarm the availability chain.
                    if let Some(id) = avail_ev[li].take() {
                        q.cancel(id);
                    }
                }
                dirty.insert(li);
            }
            let latency = flows[fi].latency;
            let delivered = t + latency;
            let r = &reqs[flows[fi].req_idx];
            if sink.enabled() {
                // Mean achieved bandwidth over the nominal bottleneck:
                // 1.0 means the flow had the route to itself for its
                // whole lifetime.
                let elapsed = (delivered.saturating_sub(r.start) - latency).as_secs_f64();
                let mut nominal = f64::INFINITY;
                for l in &flows[fi].route {
                    nominal = nominal.min(topo.link(*l)?.spec.bandwidth_mbps);
                }
                let share = if elapsed > 0.0 && nominal.is_finite() && nominal > 0.0 {
                    (r.mb / elapsed / nominal).min(1.0)
                } else {
                    1.0
                };
                sink.record(TraceEvent::TransferFinish {
                    from: r.from,
                    to: r.to,
                    at: delivered,
                    mb: r.mb,
                    contention_share: share,
                });
            }
            results[flows[fi].req_idx] = Some(TransferResult {
                tag: r.tag,
                delivered,
            });
        }

        for &li in &avails {
            dirty.insert(li);
            if !link_flows[li].is_empty() {
                if let Some(change) = topo.link(LinkId(li))?.availability().next_change_after(t) {
                    avail_ev[li] = Some(q.schedule(change, NetEv::Avail(li)));
                }
            }
        }

        for &fi in &arrivals {
            flows[fi].active = true;
            flows[fi].last_update = t;
            let r = &reqs[flows[fi].req_idx];
            if sink.enabled() {
                sink.record(TraceEvent::TransferStart {
                    from: r.from,
                    to: r.to,
                    at: t,
                    mb: r.mb,
                });
            }
            for k in 0..flows[fi].route.len() {
                let li = flows[fi].route[k].0;
                link_flows[li].push(fi);
                if link_flows[li].len() == 1 && avail_ev[li].is_none() {
                    // First flow on the link: arm its chain.
                    if let Some(change) = topo.link(LinkId(li))?.availability().next_change_after(t)
                    {
                        avail_ev[li] = Some(q.schedule(change, NetEv::Avail(li)));
                    }
                }
                dirty.insert(li);
            }
        }

        // Flows crossing any dirty link: settle progress, recompute the
        // equal-share rate, move the completion event.
        let touched = dirty.drain_sorted();
        let mut affected: Vec<usize> = touched
            .iter()
            .flat_map(|&li| link_flows[li].iter().copied())
            .collect();
        affected.sort_unstable();
        affected.dedup();
        for &fi in &affected {
            let dt = (t - flows[fi].last_update).as_secs_f64();
            if dt > 0.0 && flows[fi].rate > 0.0 {
                flows[fi].remaining_mb = (flows[fi].remaining_mb - flows[fi].rate * dt).max(0.0);
            }
            flows[fi].last_update = t;
            let mut rate = f64::INFINITY;
            for k in 0..flows[fi].route.len() {
                let li = flows[fi].route[k].0;
                let share = topo.link(LinkId(li))?.capacity_at(t) / link_flows[li].len() as f64;
                rate = rate.min(share);
            }
            flows[fi].rate = rate;
            let done = if rate > 0.0 {
                let d = if flows[fi].remaining_mb <= EPS_MB {
                    // Within tolerance of done already: finish at this
                    // very timestamp, like the reference's EPS retire.
                    SimTime::ZERO
                } else {
                    SimTime::from_secs_f64(flows[fi].remaining_mb / rate)
                };
                // A completion beyond the representable horizon behaves
                // like no completion at all (rate ~ 0).
                t.checked_add(d).filter(|&at| at < SimTime::MAX)
            } else {
                None
            };
            match (flows[fi].done_ev, done) {
                (Some(id), Some(at)) => {
                    if q.time_of(id) != Some(at) {
                        q.reschedule(id, at);
                    }
                }
                (Some(id), None) => {
                    q.cancel(id);
                    flows[fi].done_ev = None;
                }
                (None, Some(at)) => {
                    flows[fi].done_ev = Some(q.schedule(at, NetEv::Finish(fi)));
                }
                (None, None) => {}
            }
        }
    }

    finish_results(results).map(|r| (r, ev_count))
}

fn finish_results(results: Vec<Option<TransferResult>>) -> Result<Vec<TransferResult>, SimError> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| SimError::Invalid(format!("transfer {i} never resolved"))))
        .collect()
}

/// The pre-`simcore` full-recompute engine, kept as the oracle and the
/// naive baseline of the events/sec benchmark: every event rebuilds all
/// per-link flow counts and recomputes every active flow's share.
/// Returns results plus an event count tallied per cause — one per flow
/// arrival, one per flow completion, one per availability change point
/// landing on a link that carries at least one flow — the same metric
/// the incremental engine's queue pops measure. (It used to count loop
/// iterations, which coalesce same-timestamp events and include idle
/// no-ops, making the two engines' counts incomparable.) The counts
/// still differ by a few when float rounding shifts a completion across
/// an availability change point; the bench asserts a small tolerance
/// rather than equality. Semantically equivalent to
/// [`simulate_transfers_counting`]; numerically equal on every testbed
/// scenario (progress is integrated in differently-grouped chunks, so
/// adversarial float inputs may diverge in the last ulp).
pub fn simulate_transfers_reference(
    topo: &Topology,
    reqs: &[TransferReq],
    sink: &mut dyn crate::simtrace::EventSink,
) -> Result<(Vec<TransferResult>, u64), SimError> {
    use crate::simtrace::TraceEvent;
    let mut results: Vec<Option<TransferResult>> = vec![None; reqs.len()];

    // Resolve routes up front and dispatch trivial local transfers.
    let mut pending: Vec<(usize, ActiveFlow, SimTime)> = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        let route = topo.route(r.from, r.to)?;
        if route.is_empty() || r.mb <= 0.0 {
            results[i] = Some(TransferResult {
                tag: r.tag,
                delivered: r.start,
            });
            continue;
        }
        let latency = topo.route_latency(r.from, r.to)?;
        pending.push((
            i,
            ActiveFlow {
                tag: r.tag,
                route,
                remaining_mb: r.mb,
                latency,
            },
            r.start,
        ));
    }
    // Earliest arrivals first; stable on request order.
    pending.sort_by_key(|&(i, _, start)| (start, i));

    // Collect availability change points for every link in use.
    let mut used_links: Vec<LinkId> = pending
        .iter()
        .flat_map(|(_, f, _)| f.route.iter().copied())
        .collect();
    used_links.sort();
    used_links.dedup();

    let mut active: Vec<(usize, ActiveFlow)> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = pending.first().map(|&(_, _, s)| s).unwrap_or(SimTime::ZERO);
    let mut ev_count: u64 = 0;
    // Scratch: upcoming availability change per used link, per step.
    let mut changes: Vec<(LinkId, SimTime)> = Vec::new();

    const EPS_MB: f64 = 1e-12;

    while !active.is_empty() || next_arrival < pending.len() {
        // Admit arrivals at the current time.
        while next_arrival < pending.len() && pending[next_arrival].2 <= now {
            ev_count += 1;
            let (i, f, start) = &pending[next_arrival];
            if sink.enabled() {
                sink.record(TraceEvent::TransferStart {
                    from: reqs[*i].from,
                    to: reqs[*i].to,
                    at: *start,
                    mb: reqs[*i].mb,
                });
            }
            active.push((*i, f.clone()));
            next_arrival += 1;
        }
        if active.is_empty() {
            // Jump to the next arrival.
            now = pending[next_arrival].2;
            continue;
        }

        // Per-link flow counts at this instant.
        let mut counts: BTreeMap<LinkId, usize> = BTreeMap::new();
        for (_, f) in &active {
            for l in &f.route {
                *counts.entry(*l).or_insert(0) += 1;
            }
        }

        // Per-flow rates (MB/s) under equal sharing.
        let mut rates: Vec<f64> = Vec::with_capacity(active.len());
        for (_, f) in &active {
            let mut rate = f64::INFINITY;
            for l in &f.route {
                let link = topo.link(*l)?;
                let share = link.capacity_at(now) / counts[l] as f64;
                rate = rate.min(share);
            }
            rates.push(rate);
        }

        // Next event: earliest of (a) flow completion at current rates,
        // (b) link availability change, (c) next arrival.
        let mut next_event = SimTime::MAX;
        for ((_, f), &rate) in active.iter().zip(&rates) {
            if rate > 0.0 {
                let done = now + SimTime::from_secs_f64(f.remaining_mb / rate);
                next_event = next_event.min(done);
            }
        }
        changes.clear();
        for l in &used_links {
            if let Some(change) = topo.link(*l)?.availability().next_change_after(now) {
                next_event = next_event.min(change);
                changes.push((*l, change));
            }
        }
        if next_arrival < pending.len() {
            next_event = next_event.min(pending[next_arrival].2);
        }
        if next_event == SimTime::MAX {
            // Every active flow is stalled at rate 0 with no future
            // availability change and no arrivals: they never finish.
            let stuck: f64 = active.iter().map(|(_, f)| f.remaining_mb).sum();
            return Err(SimError::NeverCompletes { work: stuck });
        }

        // Count availability change points landing exactly at this
        // step on links that carry at least one flow — the set the
        // incremental engine's lazily-armed chains pop events for.
        for &(l, change) in &changes {
            if change == next_event && counts.get(&l).copied().unwrap_or(0) > 0 {
                ev_count += 1;
            }
        }

        // Advance all flows to `next_event`.
        let dt = (next_event - now).as_secs_f64();
        for ((_, f), &rate) in active.iter_mut().zip(&rates) {
            f.remaining_mb = (f.remaining_mb - rate * dt).max(0.0);
        }
        now = next_event;

        // Retire completed flows, in request order at equal timestamps
        // (the same tie-break the incremental engine uses).
        let mut finished: Vec<(usize, ActiveFlow)> = Vec::new();
        let mut i = 0;
        while i < active.len() {
            if active[i].1.remaining_mb <= EPS_MB {
                finished.push(active.swap_remove(i));
            } else {
                i += 1;
            }
        }
        finished.sort_by_key(|&(idx, _)| idx);
        for (idx, f) in finished {
            ev_count += 1;
            let delivered = now + f.latency;
            if sink.enabled() {
                // Mean achieved bandwidth over the nominal
                // bottleneck: 1.0 means the flow had the route to
                // itself for its whole lifetime.
                let r = &reqs[idx];
                let elapsed = (delivered.saturating_sub(r.start) - f.latency).as_secs_f64();
                let mut nominal = f64::INFINITY;
                for l in &f.route {
                    nominal = nominal.min(topo.link(*l)?.spec.bandwidth_mbps);
                }
                let share = if elapsed > 0.0 && nominal.is_finite() && nominal > 0.0 {
                    (r.mb / elapsed / nominal).min(1.0)
                } else {
                    1.0
                };
                sink.record(TraceEvent::TransferFinish {
                    from: r.from,
                    to: r.to,
                    at: delivered,
                    mb: r.mb,
                    contention_share: share,
                });
            }
            results[idx] = Some(TransferResult {
                tag: f.tag,
                delivered,
            });
        }
    }

    finish_results(results).map(|r| (r, ev_count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Two hosts on one dedicated 10 MB/s segment with 1 ms latency.
    fn two_host_topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::from_millis(1)));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
        b.instantiate(s(10_000.0), 0).unwrap()
    }

    #[test]
    fn single_transfer_takes_size_over_bandwidth_plus_latency() {
        let topo = two_host_topo();
        let res = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 100.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        )
        .unwrap();
        // 100 MB at 10 MB/s = 10 s, plus 1 ms latency.
        assert_eq!(res[0].delivered, s(10.0) + SimTime::from_millis(1));
    }

    #[test]
    fn concurrent_transfers_share_the_medium() {
        let topo = two_host_topo();
        let reqs: Vec<TransferReq> = (0..2)
            .map(|i| TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 50.0,
                start: SimTime::ZERO,
                tag: i,
            })
            .collect();
        let res = simulate_transfers(&topo, &reqs).unwrap();
        // Two equal flows on a 10 MB/s link each get 5 MB/s: 10 s each.
        for r in &res {
            assert_eq!(r.delivered, s(10.0) + SimTime::from_millis(1));
        }
    }

    #[test]
    fn staggered_transfer_speeds_up_after_first_finishes() {
        let topo = two_host_topo();
        let res = simulate_transfers(
            &topo,
            &[
                TransferReq {
                    from: HostId(0),
                    to: HostId(1),
                    mb: 50.0,
                    start: SimTime::ZERO,
                    tag: 0,
                },
                TransferReq {
                    from: HostId(0),
                    to: HostId(1),
                    mb: 100.0,
                    start: SimTime::ZERO,
                    tag: 1,
                },
            ],
        )
        .unwrap();
        // Shared at 5 MB/s until flow 0 finishes at t=10 (50 MB each
        // done). Flow 1 then has 50 MB left at 10 MB/s: done at t=15.
        assert_eq!(res[0].delivered, s(10.0) + SimTime::from_millis(1));
        assert_eq!(res[1].delivered, s(15.0) + SimTime::from_millis(1));
    }

    #[test]
    fn same_host_transfer_is_instant() {
        let topo = two_host_topo();
        let res = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(0),
                mb: 1e9,
                start: s(5.0),
                tag: 7,
            }],
        )
        .unwrap();
        assert_eq!(res[0].delivered, s(5.0));
        assert_eq!(res[0].tag, 7);
    }

    #[test]
    fn background_load_halves_capacity() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Constant(0.5),
        ));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
        let topo = b.instantiate(s(1000.0), 0).unwrap();
        let res = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 50.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        )
        .unwrap();
        // 50 MB at 5 MB/s usable = 10 s.
        assert_eq!(res[0].delivered, s(10.0));
    }

    #[test]
    fn transfer_stalls_through_outage() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(2.0), 0.0), (s(7.0), 1.0)]),
        ));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
        let topo = b.instantiate(s(1000.0), 0).unwrap();
        let res = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 40.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        )
        .unwrap();
        // 20 MB in [0,2], stalled in [2,7], remaining 20 MB in [7,9].
        assert_eq!(res[0].delivered, s(9.0));
    }

    #[test]
    fn permanently_dead_link_errors() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Constant(0.0),
        ));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
        let topo = b.instantiate(s(1000.0), 0).unwrap();
        let err = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 1.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        );
        assert!(matches!(err, Err(SimError::NeverCompletes { .. })));
    }

    #[test]
    fn cross_segment_route_crosses_gateway() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::from_millis(1)));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::from_millis(1)));
        let gw = b.add_link(LinkSpec::dedicated("gw", 2.0, SimTime::from_millis(5)));
        b.add_route(sa, sb, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, sb));
        let topo = b.instantiate(s(1000.0), 0).unwrap();

        let route = topo.route(HostId(0), HostId(1)).unwrap();
        assert_eq!(route.len(), 3);
        assert_eq!(
            topo.route_latency(HostId(0), HostId(1)).unwrap(),
            SimTime::from_millis(7)
        );

        let res = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 20.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        )
        .unwrap();
        // Bottleneck is the 2 MB/s gateway: 10 s + 7 ms latency.
        assert_eq!(res[0].delivered, s(10.0) + SimTime::from_millis(7));
    }

    #[test]
    fn reverse_route_is_registered_automatically() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        let gw = b.add_link(LinkSpec::dedicated("gw", 2.0, SimTime::ZERO));
        b.add_route(sa, sb, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, sb));
        let topo = b.instantiate(s(1.0), 0).unwrap();
        assert!(topo.route(HostId(1), HostId(0)).is_ok());
    }

    #[test]
    fn connect_derives_multi_hop_routes() {
        // A chain of three segments joined by two connect() edges:
        // routes across the chain appear without explicit add_route.
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::from_millis(1)));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::from_millis(1)));
        let sc = b.add_segment(LinkSpec::dedicated("segC", 10.0, SimTime::from_millis(1)));
        let ab = b.connect(
            sa,
            sb,
            LinkSpec::dedicated("ab", 2.0, SimTime::from_millis(5)),
        );
        let bc = b.connect(
            sb,
            sc,
            LinkSpec::dedicated("bc", 2.0, SimTime::from_millis(5)),
        );
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("c", 10.0, 64.0, sc));
        let topo = b.instantiate(s(100.0), 0).unwrap();
        let route = topo.route(HostId(0), HostId(1)).unwrap();
        // segA link + ab + bc + segC link.
        assert_eq!(route.len(), 4);
        assert!(route.contains(&ab));
        assert!(route.contains(&bc));
        // And the reverse direction works too.
        assert!(topo.route(HostId(1), HostId(0)).is_ok());
    }

    #[test]
    fn explicit_routes_beat_derived_ones() {
        // Both a direct connect edge and an explicit route through an
        // express link exist: the explicit route must win.
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        let _slow = b.connect(sa, sb, LinkSpec::dedicated("slow", 0.1, SimTime::ZERO));
        let express = b.add_link(LinkSpec::dedicated("express", 50.0, SimTime::ZERO));
        b.add_route(sa, sb, vec![express]).unwrap();
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, sb));
        let topo = b.instantiate(s(100.0), 0).unwrap();
        let route = topo.route(HostId(0), HostId(1)).unwrap();
        assert!(route.contains(&express), "route {route:?}");
    }

    #[test]
    fn disconnected_components_still_error() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        let sc = b.add_segment(LinkSpec::dedicated("island", 10.0, SimTime::ZERO));
        b.connect(sa, sb, LinkSpec::dedicated("ab", 1.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("island-host", 10.0, 64.0, sc));
        let topo = b.instantiate(s(100.0), 0).unwrap();
        assert!(matches!(
            topo.route(HostId(0), HostId(1)),
            Err(SimError::NoRoute { .. })
        ));
    }

    #[test]
    fn missing_route_is_an_error() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, sa));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, sb));
        let topo = b.instantiate(s(1.0), 0).unwrap();
        assert!(matches!(
            topo.route(HostId(0), HostId(1)),
            Err(SimError::NoRoute { .. })
        ));
    }

    #[test]
    fn transfer_estimate_matches_uncontended_simulation() {
        let topo = two_host_topo();
        let est = topo
            .transfer_estimate(HostId(0), HostId(1), 100.0, SimTime::ZERO)
            .unwrap();
        let sim = simulate_transfers(
            &topo,
            &[TransferReq {
                from: HostId(0),
                to: HostId(1),
                mb: 100.0,
                start: SimTime::ZERO,
                tag: 0,
            }],
        )
        .unwrap();
        assert_eq!(est, sim[0].delivered);
    }

    #[test]
    fn unknown_host_is_an_error() {
        let topo = two_host_topo();
        assert!(matches!(
            topo.route(HostId(0), HostId(99)),
            Err(SimError::UnknownHost(99))
        ));
    }

    #[test]
    fn zero_bandwidth_link_rejected_at_build() {
        let mut b = TopologyBuilder::new();
        b.add_segment(LinkSpec::dedicated("bad", 0.0, SimTime::ZERO));
        assert!(b.instantiate(s(1.0), 0).is_err());
    }

    /// A mixed scenario: shared segments, a gateway, background load,
    /// staggered starts — stress for the incremental engine.
    fn busy_topo_and_reqs() -> (Topology, Vec<TransferReq>) {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::shared(
            "segA",
            10.0,
            SimTime::from_millis(1),
            LoadModel::Periodic {
                high: 1.0,
                low: 0.4,
                half_period: s(2.0),
                phase: SimTime::ZERO,
            },
        ));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 8.0, SimTime::from_millis(2)));
        b.connect(
            sa,
            sb,
            LinkSpec::shared(
                "gw",
                3.0,
                SimTime::from_millis(5),
                LoadModel::Periodic {
                    high: 1.0,
                    low: 0.5,
                    half_period: s(3.5),
                    phase: s(1.0),
                },
            ),
        );
        for i in 0..3 {
            b.add_host(HostSpec::dedicated(&format!("a{i}"), 10.0, 64.0, sa));
            b.add_host(HostSpec::dedicated(&format!("b{i}"), 10.0, 64.0, sb));
        }
        let topo = b.instantiate(s(100_000.0), 42).unwrap();
        let mut reqs = Vec::new();
        for k in 0..24usize {
            reqs.push(TransferReq {
                from: HostId(k % 6),
                to: HostId((k * 5 + 1) % 6),
                mb: 3.0 + (k % 7) as f64,
                start: s(0.5 * (k % 9) as f64),
                tag: k,
            });
        }
        (topo, reqs)
    }

    #[test]
    fn incremental_engine_matches_reference() {
        let (topo, reqs) = busy_topo_and_reqs();
        let mut sink_a = crate::simtrace::VecSink::new();
        let mut sink_b = crate::simtrace::VecSink::new();
        let (inc, _) = simulate_transfers_counting(&topo, &reqs, &mut sink_a).unwrap();
        let (refr, _) = simulate_transfers_reference(&topo, &reqs, &mut sink_b).unwrap();
        assert_eq!(inc, refr);
        // Same event stream, byte for byte: same kinds, times, payloads.
        let a: Vec<String> = sink_a.events.iter().map(|e| e.to_json()).collect();
        let b: Vec<String> = sink_b.events.iter().map(|e| e.to_json()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_engine_counts_fewer_or_equal_touches_than_reference() {
        // Not a perf assertion (that's the bench); just that both count.
        let (topo, reqs) = busy_topo_and_reqs();
        let mut n = crate::simtrace::NoopSink;
        let (_, ev_inc) = simulate_transfers_counting(&topo, &reqs, &mut n).unwrap();
        let (_, ev_ref) = simulate_transfers_reference(&topo, &reqs, &mut n).unwrap();
        assert!(ev_inc > 0 && ev_ref > 0);
    }

    #[test]
    fn self_route_is_rejected() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let gw = b.add_link(LinkSpec::dedicated("gw", 1.0, SimTime::ZERO));
        assert!(matches!(
            b.add_route(sa, sa, vec![gw]),
            Err(SimError::SelfRoute { segment }) if segment == sa.0
        ));
    }

    #[test]
    fn duplicate_route_is_rejected_in_both_directions() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        let gw = b.add_link(LinkSpec::dedicated("gw", 1.0, SimTime::ZERO));
        let express = b.add_link(LinkSpec::dedicated("express", 50.0, SimTime::ZERO));
        b.add_route(sa, sb, vec![gw]).unwrap();
        // Same direction and the auto-registered reverse both refuse.
        assert!(matches!(
            b.add_route(sa, sb, vec![express]),
            Err(SimError::DuplicateRoute { .. })
        ));
        assert!(matches!(
            b.add_route(sb, sa, vec![express]),
            Err(SimError::DuplicateRoute { .. })
        ));
        // The original route is untouched.
        assert_eq!(b.routes.via(sa, sb), Some(&[gw][..]));
    }

    #[test]
    fn route_ref_matches_route_and_does_not_allocate_parts() {
        let (topo, _) = busy_topo_and_reqs();
        for a in 0..topo.hosts().len() {
            for b in 0..topo.hosts().len() {
                let r = topo.route(HostId(a), HostId(b)).unwrap();
                let rr = topo.route_ref(HostId(a), HostId(b)).unwrap();
                assert_eq!(rr.to_vec(), r);
                assert_eq!(rr.len(), r.len());
                let un = topo.route_uncached(HostId(a), HostId(b)).unwrap();
                assert_eq!(un, r);
            }
        }
    }

    #[test]
    fn incomplete_cluster_hints_are_rejected_at_instantiate() {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 10.0, SimTime::ZERO));
        let _sb = b.add_segment(LinkSpec::dedicated("segB", 10.0, SimTime::ZERO));
        b.set_segment_cluster(sa, 0);
        b.set_cluster_root(0, sa);
        // segB has no cluster tag: the hints are partial.
        assert!(matches!(
            b.instantiate(s(1.0), 0),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn hinted_clusters_route_like_unhinted() {
        // Two clusters of two leaf segments each, roots joined through
        // a backbone segment. The hinted (hierarchical cache) build
        // must route every host pair exactly like the unhinted (dense
        // cache over full BFS) build.
        fn build(hinted: bool) -> Topology {
            let mut b = TopologyBuilder::new();
            let bb = b.add_segment(LinkSpec::dedicated("bb", 40.0, SimTime::from_millis(1)));
            let mut hosts = 0;
            for c in 0..2usize {
                let root =
                    b.add_segment(LinkSpec::dedicated(&format!("r{c}"), 20.0, SimTime::ZERO));
                b.connect(
                    root,
                    bb,
                    LinkSpec::dedicated(&format!("up{c}"), 10.0, SimTime::from_millis(2)),
                );
                if hinted {
                    b.set_segment_cluster(root, c + 1);
                    b.set_cluster_root(c + 1, root);
                }
                for l in 0..2usize {
                    let leaf = b.add_segment(LinkSpec::dedicated(
                        &format!("c{c}l{l}"),
                        10.0,
                        SimTime::from_millis(1),
                    ));
                    b.connect(
                        leaf,
                        root,
                        LinkSpec::dedicated(&format!("e{c}{l}"), 5.0, SimTime::from_millis(1)),
                    );
                    if hinted {
                        b.set_segment_cluster(leaf, c + 1);
                    }
                    b.add_host(HostSpec::dedicated(&format!("h{c}{l}"), 10.0, 64.0, leaf));
                    hosts += 1;
                }
            }
            if hinted {
                b.set_segment_cluster(SegmentId(0), 0);
                b.set_cluster_root(0, SegmentId(0));
            }
            assert_eq!(hosts, 4);
            b.instantiate(s(100.0), 7).unwrap()
        }
        let hier = build(true);
        let dense = build(false);
        for a in 0..4 {
            for c in 0..4 {
                let r1 = hier.route(HostId(a), HostId(c)).unwrap();
                let r2 = dense.route(HostId(a), HostId(c)).unwrap();
                assert_eq!(r1, r2, "pair ({a},{c})");
                assert_eq!(
                    hier.route_latency(HostId(a), HostId(c)).unwrap(),
                    dense.route_latency(HostId(a), HostId(c)).unwrap()
                );
            }
        }
    }

    #[test]
    fn engines_count_the_same_events_on_the_busy_testbed() {
        let (topo, reqs) = busy_topo_and_reqs();
        let mut n = crate::simtrace::NoopSink;
        let (_, ev_inc) = simulate_transfers_counting(&topo, &reqs, &mut n).unwrap();
        let (_, ev_ref) = simulate_transfers_reference(&topo, &reqs, &mut n).unwrap();
        assert_eq!(
            ev_inc, ev_ref,
            "engines disagree on the unified event metric"
        );
    }

    #[test]
    fn instantiate_rejects_host_on_unknown_segment() {
        let mut b = TopologyBuilder::new();
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, SegmentId(5)));
        assert!(matches!(
            b.instantiate(s(1.0), 0),
            Err(SimError::UnknownSegment(5))
        ));
    }
}
