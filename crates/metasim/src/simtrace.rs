//! Structured event tracing across the simulation stack.
//!
//! The paper's argument is about *why* a schedule won — per-worker
//! compute vs. wait, border-exchange cost, forecast error at decision
//! time — yet end-of-run aggregates throw that information away. This
//! module defines a deterministic event log every layer can append to:
//!
//! * **metasim** emits compute, transfer, fault and load events,
//! * **nws** emits one [`TraceEvent::ForecastIssued`] per monitored
//!   resource per advance (predicted vs. observed, per-method error),
//! * **core** emits selection, candidate-evaluation, actuation and
//!   rescheduling decisions,
//! * **grid** emits the job lifecycle (submit → dispatch →
//!   retry/backoff → complete/fail).
//!
//! Producers take a `&mut dyn EventSink`. The default [`NoopSink`]
//! reports `enabled() == false`, and every emission site is guarded by
//! that check, so untraced runs never construct an event — tracing is
//! zero-cost when no sink is attached.
//!
//! **Determinism guarantee:** the simulation is deterministic given a
//! seed, and events are emitted in simulation order by straight-line
//! code, so two runs with the same seed and configuration produce
//! byte-identical JSONL streams ([`WriterSink`]). [`first_divergence`]
//! turns that guarantee into a mechanical check.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;

use crate::host::HostId;
use crate::net::LinkId;
use crate::time::SimTime;

/// One structured event from somewhere in the stack.
///
/// Every variant carries an absolute simulation timestamp ([`SimTime`],
/// serialized as integer microseconds) so streams from different layers
/// interleave on a common clock.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A worker began its compute phase on a host (one event per worker
    /// per run, covering all iterations; `work_mflop` is the total).
    ComputeStart {
        /// Host executing the worker.
        host: HostId,
        /// Co-allocation barrier time when compute began.
        at: SimTime,
        /// Total work across all iterations, Mflop.
        work_mflop: f64,
    },
    /// A worker finished its last compute phase.
    ComputeFinish {
        /// Host that executed the worker.
        host: HostId,
        /// When the final compute phase completed.
        at: SimTime,
        /// Total wall-clock seconds spent computing (load and paging
        /// slowdown included).
        elapsed_seconds: f64,
    },
    /// A transfer was admitted to the network.
    TransferStart {
        /// Sending host.
        from: HostId,
        /// Receiving host.
        to: HostId,
        /// When the transfer entered the network.
        at: SimTime,
        /// Payload, MB.
        mb: f64,
    },
    /// A transfer was fully delivered.
    TransferFinish {
        /// Sending host.
        from: HostId,
        /// Receiving host.
        to: HostId,
        /// Delivery time (propagation latency included).
        at: SimTime,
        /// Payload, MB.
        mb: f64,
        /// Mean achieved bandwidth over the nominal bottleneck
        /// bandwidth of the route: 1.0 means the flow had the
        /// bottleneck to itself, lower means contention.
        contention_share: f64,
    },
    /// A host crash was injected into the topology.
    HostFaultInjected {
        /// Crashed host.
        host: HostId,
        /// Crash time.
        at: SimTime,
        /// Recovery time; `None` is a permanent crash.
        recover: Option<SimTime>,
    },
    /// A link outage was injected into the topology.
    LinkFaultInjected {
        /// Dark link.
        link: LinkId,
        /// Outage start.
        at: SimTime,
        /// Recovery time; `None` is a permanent outage.
        recover: Option<SimTime>,
    },
    /// A running placement was revoked mid-run by a host death.
    PlacementRevoked {
        /// Host that died under the placement.
        host: HostId,
        /// When the loss was detected.
        at: SimTime,
    },
    /// Background load was imposed on a host (a dispatched job making
    /// the resource busier for everyone after it).
    LoadImposed {
        /// Loaded host.
        host: HostId,
        /// Load window start.
        at: SimTime,
        /// Load window end.
        until: SimTime,
        /// Multiplicative availability factor applied over the window.
        factor: f64,
    },
    /// The forecaster published a prediction for a resource and
    /// immediately scored it against the newly observed value.
    ForecastIssued {
        /// Monitored resource, e.g. `cpu:3` or `link:1`.
        resource: String,
        /// Wall-clock of the monitoring advance.
        at: SimTime,
        /// Prediction made *before* the new samples arrived.
        predicted: f64,
        /// Most recent observed value.
        observed: f64,
        /// Running mean absolute error of the winning method.
        error: f64,
        /// Name of the forecasting method that currently wins.
        method: String,
    },
    /// The coordinator started a selection over a candidate pool.
    ResourceSelection {
        /// Decision time.
        at: SimTime,
        /// Number of candidate resource sets under consideration.
        candidates: usize,
    },
    /// One candidate schedule was evaluated by the cost model.
    CandidateConsidered {
        /// Decision time.
        at: SimTime,
        /// Index of the candidate within the selection.
        index: usize,
        /// Number of hosts the candidate uses.
        hosts: usize,
        /// Cost-model predicted execution seconds.
        predicted_seconds: f64,
        /// Objective value (lower is better).
        objective: f64,
    },
    /// The coordinator committed to a schedule.
    ScheduleChosen {
        /// Decision time.
        at: SimTime,
        /// Index of the winning candidate.
        index: usize,
        /// Predicted execution seconds of the winner.
        predicted_seconds: f64,
    },
    /// A schedule was actuated on the simulated testbed.
    Actuated {
        /// Actuation start time.
        at: SimTime,
        /// Simulated completion time.
        finish: SimTime,
        /// Elapsed wall-clock seconds.
        elapsed_seconds: f64,
    },
    /// The rescheduler re-planned at a phase boundary.
    RescheduleTriggered {
        /// Re-planning time.
        at: SimTime,
        /// Phase number (0-based).
        phase: usize,
    },
    /// The rescheduler compared staying put against migrating.
    RescheduleDecision {
        /// Decision time.
        at: SimTime,
        /// Predicted seconds for the remaining work if it stays.
        keep_seconds: f64,
        /// Predicted seconds for the remaining work if it moves.
        move_seconds: f64,
        /// Predicted cost of moving the state, seconds.
        move_cost_seconds: f64,
        /// Whether the job migrated.
        migrated: bool,
    },
    /// A job entered the stream.
    JobSubmitted {
        /// Submission-order index within the stream.
        job: usize,
        /// Job class name.
        kind: String,
        /// Absolute submission time.
        at: SimTime,
    },
    /// A job was admitted and its agent dispatched a placement attempt.
    JobDispatched {
        /// Job index.
        job: usize,
        /// Dispatch time.
        at: SimTime,
        /// Attempt number (1 = first try).
        attempt: u32,
    },
    /// A failed attempt was scheduled for retry after backoff.
    JobRetried {
        /// Job index.
        job: usize,
        /// Time the retry was scheduled (next attempt start).
        at: SimTime,
        /// The attempt that failed.
        attempt: u32,
    },
    /// A centralized batch scheduler started a queued job ahead of
    /// FCFS order because it fits without delaying the head-of-queue
    /// reservation (EASY backfilling).
    JobBackfilled {
        /// Job index.
        job: usize,
        /// Backfill start time.
        at: SimTime,
        /// The head-of-queue reservation the backfill must not delay.
        reservation: SimTime,
    },
    /// A scheduler measured how long a job's current attempt would run
    /// on dedicated (uncontended) resources — the what-if baseline a
    /// fractional-share regime dilutes. Profilers use this to split the
    /// attempt window into compute vs. contention-wait when the actual
    /// execution never touches the shared executor trace.
    JobWorkMeasured {
        /// Job index.
        job: usize,
        /// Measurement time (the dispatch this estimate covers).
        at: SimTime,
        /// Predicted dedicated execution seconds for the attempt.
        dedicated_seconds: f64,
    },
    /// A job finished its work.
    JobCompleted {
        /// Job index.
        job: usize,
        /// Completion time.
        at: SimTime,
        /// Admission-to-completion seconds.
        exec_seconds: f64,
    },
    /// A job exhausted its retry budget.
    JobFailed {
        /// Job index.
        job: usize,
        /// Time of the final failed attempt.
        at: SimTime,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value (`null` for non-finite inputs, which
/// JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format an optional [`SimTime`] as integer microseconds or `null`.
fn json_opt_time(t: Option<SimTime>) -> String {
    match t {
        Some(t) => format!("{}", t.0),
        None => "null".to_string(),
    }
}

impl TraceEvent {
    /// Stable snake_case name of the event kind (the JSON `kind`
    /// field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ComputeStart { .. } => "compute_start",
            TraceEvent::ComputeFinish { .. } => "compute_finish",
            TraceEvent::TransferStart { .. } => "transfer_start",
            TraceEvent::TransferFinish { .. } => "transfer_finish",
            TraceEvent::HostFaultInjected { .. } => "host_fault_injected",
            TraceEvent::LinkFaultInjected { .. } => "link_fault_injected",
            TraceEvent::PlacementRevoked { .. } => "placement_revoked",
            TraceEvent::LoadImposed { .. } => "load_imposed",
            TraceEvent::ForecastIssued { .. } => "forecast_issued",
            TraceEvent::ResourceSelection { .. } => "resource_selection",
            TraceEvent::CandidateConsidered { .. } => "candidate_considered",
            TraceEvent::ScheduleChosen { .. } => "schedule_chosen",
            TraceEvent::Actuated { .. } => "actuated",
            TraceEvent::RescheduleTriggered { .. } => "reschedule_triggered",
            TraceEvent::RescheduleDecision { .. } => "reschedule_decision",
            TraceEvent::JobSubmitted { .. } => "job_submitted",
            TraceEvent::JobDispatched { .. } => "job_dispatched",
            TraceEvent::JobRetried { .. } => "job_retried",
            TraceEvent::JobBackfilled { .. } => "job_backfilled",
            TraceEvent::JobWorkMeasured { .. } => "job_work_measured",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::JobFailed { .. } => "job_failed",
        }
    }

    /// The event's absolute timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::ComputeStart { at, .. }
            | TraceEvent::ComputeFinish { at, .. }
            | TraceEvent::TransferStart { at, .. }
            | TraceEvent::TransferFinish { at, .. }
            | TraceEvent::HostFaultInjected { at, .. }
            | TraceEvent::LinkFaultInjected { at, .. }
            | TraceEvent::PlacementRevoked { at, .. }
            | TraceEvent::LoadImposed { at, .. }
            | TraceEvent::ForecastIssued { at, .. }
            | TraceEvent::ResourceSelection { at, .. }
            | TraceEvent::CandidateConsidered { at, .. }
            | TraceEvent::ScheduleChosen { at, .. }
            | TraceEvent::Actuated { at, .. }
            | TraceEvent::RescheduleTriggered { at, .. }
            | TraceEvent::RescheduleDecision { at, .. }
            | TraceEvent::JobSubmitted { at, .. }
            | TraceEvent::JobDispatched { at, .. }
            | TraceEvent::JobRetried { at, .. }
            | TraceEvent::JobBackfilled { at, .. }
            | TraceEvent::JobWorkMeasured { at, .. }
            | TraceEvent::JobCompleted { at, .. }
            | TraceEvent::JobFailed { at, .. } => at,
        }
    }

    /// Serialize the event as one line of JSON (hand-rolled; the
    /// workspace carries no serialization dependency). [`SimTime`]
    /// fields are integer microseconds so streams compare byte-exactly.
    pub fn to_json(&self) -> String {
        let kind = self.kind();
        match self {
            TraceEvent::ComputeStart {
                host,
                at,
                work_mflop,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"host\":{},\"work_mflop\":{}}}",
                at.0,
                host.0,
                json_f64(*work_mflop)
            ),
            TraceEvent::ComputeFinish {
                host,
                at,
                elapsed_seconds,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"host\":{},\"elapsed_seconds\":{}}}",
                at.0,
                host.0,
                json_f64(*elapsed_seconds)
            ),
            TraceEvent::TransferStart { from, to, at, mb } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"from\":{},\"to\":{},\"mb\":{}}}",
                at.0,
                from.0,
                to.0,
                json_f64(*mb)
            ),
            TraceEvent::TransferFinish {
                from,
                to,
                at,
                mb,
                contention_share,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"from\":{},\"to\":{},\"mb\":{},\
                 \"contention_share\":{}}}",
                at.0,
                from.0,
                to.0,
                json_f64(*mb),
                json_f64(*contention_share)
            ),
            TraceEvent::HostFaultInjected { host, at, recover } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"host\":{},\"recover\":{}}}",
                at.0,
                host.0,
                json_opt_time(*recover)
            ),
            TraceEvent::LinkFaultInjected { link, at, recover } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"link\":{},\"recover\":{}}}",
                at.0,
                link.0,
                json_opt_time(*recover)
            ),
            TraceEvent::PlacementRevoked { host, at } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"host\":{}}}",
                at.0, host.0
            ),
            TraceEvent::LoadImposed {
                host,
                at,
                until,
                factor,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"host\":{},\"until\":{},\"factor\":{}}}",
                at.0,
                host.0,
                until.0,
                json_f64(*factor)
            ),
            TraceEvent::ForecastIssued {
                resource,
                at,
                predicted,
                observed,
                error,
                method,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"resource\":\"{}\",\"predicted\":{},\
                 \"observed\":{},\"error\":{},\"method\":\"{}\"}}",
                at.0,
                json_escape(resource),
                json_f64(*predicted),
                json_f64(*observed),
                json_f64(*error),
                json_escape(method)
            ),
            TraceEvent::ResourceSelection { at, candidates } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"candidates\":{candidates}}}",
                at.0
            ),
            TraceEvent::CandidateConsidered {
                at,
                index,
                hosts,
                predicted_seconds,
                objective,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"index\":{index},\"hosts\":{hosts},\
                 \"predicted_seconds\":{},\"objective\":{}}}",
                at.0,
                json_f64(*predicted_seconds),
                json_f64(*objective)
            ),
            TraceEvent::ScheduleChosen {
                at,
                index,
                predicted_seconds,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"index\":{index},\"predicted_seconds\":{}}}",
                at.0,
                json_f64(*predicted_seconds)
            ),
            TraceEvent::Actuated {
                at,
                finish,
                elapsed_seconds,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"finish\":{},\"elapsed_seconds\":{}}}",
                at.0,
                finish.0,
                json_f64(*elapsed_seconds)
            ),
            TraceEvent::RescheduleTriggered { at, phase } => {
                format!("{{\"kind\":\"{kind}\",\"at\":{},\"phase\":{phase}}}", at.0)
            }
            TraceEvent::RescheduleDecision {
                at,
                keep_seconds,
                move_seconds,
                move_cost_seconds,
                migrated,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"keep_seconds\":{},\"move_seconds\":{},\
                 \"move_cost_seconds\":{},\"migrated\":{migrated}}}",
                at.0,
                json_f64(*keep_seconds),
                json_f64(*move_seconds),
                json_f64(*move_cost_seconds)
            ),
            TraceEvent::JobSubmitted { job, kind: k, at } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"class\":\"{}\"}}",
                at.0,
                json_escape(k)
            ),
            TraceEvent::JobDispatched { job, at, attempt } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"attempt\":{attempt}}}",
                at.0
            ),
            TraceEvent::JobRetried { job, at, attempt } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"attempt\":{attempt}}}",
                at.0
            ),
            TraceEvent::JobBackfilled {
                job,
                at,
                reservation,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"reservation\":{}}}",
                at.0, reservation.0
            ),
            TraceEvent::JobWorkMeasured {
                job,
                at,
                dedicated_seconds,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"dedicated_seconds\":{}}}",
                at.0,
                json_f64(*dedicated_seconds)
            ),
            TraceEvent::JobCompleted {
                job,
                at,
                exec_seconds,
            } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"exec_seconds\":{}}}",
                at.0,
                json_f64(*exec_seconds)
            ),
            TraceEvent::JobFailed { job, at, attempts } => format!(
                "{{\"kind\":\"{kind}\",\"at\":{},\"job\":{job},\"attempts\":{attempts}}}",
                at.0
            ),
        }
    }

    /// Parse one JSONL line produced by [`TraceEvent::to_json`] back
    /// into an event.
    ///
    /// Returns `None` when the line has no recognizable `kind`, an
    /// unknown kind, or a missing required field, so consumers of
    /// foreign or truncated traces can skip bad lines and keep going.
    /// Numeric fields serialized as `null` (non-finite floats) come
    /// back as NaN, preserving the event rather than dropping it.
    pub fn from_json(line: &str) -> Option<TraceEvent> {
        let kind = extract_json_str(line, "kind")?;
        let at = SimTime(extract_json_u64(line, "at")?);
        let host = |key: &str| Some(HostId(extract_json_u64(line, key)? as usize));
        let idx = |key: &str| Some(extract_json_u64(line, key)? as usize);
        Some(match kind.as_str() {
            "compute_start" => TraceEvent::ComputeStart {
                host: host("host")?,
                at,
                work_mflop: extract_json_f64(line, "work_mflop")?,
            },
            "compute_finish" => TraceEvent::ComputeFinish {
                host: host("host")?,
                at,
                elapsed_seconds: extract_json_f64(line, "elapsed_seconds")?,
            },
            "transfer_start" => TraceEvent::TransferStart {
                from: host("from")?,
                to: host("to")?,
                at,
                mb: extract_json_f64(line, "mb")?,
            },
            "transfer_finish" => TraceEvent::TransferFinish {
                from: host("from")?,
                to: host("to")?,
                at,
                mb: extract_json_f64(line, "mb")?,
                contention_share: extract_json_f64(line, "contention_share")?,
            },
            "host_fault_injected" => TraceEvent::HostFaultInjected {
                host: host("host")?,
                at,
                recover: extract_json_u64(line, "recover").map(SimTime),
            },
            "link_fault_injected" => TraceEvent::LinkFaultInjected {
                link: LinkId(extract_json_u64(line, "link")? as usize),
                at,
                recover: extract_json_u64(line, "recover").map(SimTime),
            },
            "placement_revoked" => TraceEvent::PlacementRevoked {
                host: host("host")?,
                at,
            },
            "load_imposed" => TraceEvent::LoadImposed {
                host: host("host")?,
                at,
                until: SimTime(extract_json_u64(line, "until")?),
                factor: extract_json_f64(line, "factor")?,
            },
            "forecast_issued" => TraceEvent::ForecastIssued {
                resource: extract_json_str(line, "resource")?,
                at,
                predicted: extract_json_f64(line, "predicted")?,
                observed: extract_json_f64(line, "observed")?,
                error: extract_json_f64(line, "error")?,
                method: extract_json_str(line, "method")?,
            },
            "resource_selection" => TraceEvent::ResourceSelection {
                at,
                candidates: idx("candidates")?,
            },
            "candidate_considered" => TraceEvent::CandidateConsidered {
                at,
                index: idx("index")?,
                hosts: idx("hosts")?,
                predicted_seconds: extract_json_f64(line, "predicted_seconds")?,
                objective: extract_json_f64(line, "objective")?,
            },
            "schedule_chosen" => TraceEvent::ScheduleChosen {
                at,
                index: idx("index")?,
                predicted_seconds: extract_json_f64(line, "predicted_seconds")?,
            },
            "actuated" => TraceEvent::Actuated {
                at,
                finish: SimTime(extract_json_u64(line, "finish")?),
                elapsed_seconds: extract_json_f64(line, "elapsed_seconds")?,
            },
            "reschedule_triggered" => TraceEvent::RescheduleTriggered {
                at,
                phase: idx("phase")?,
            },
            "reschedule_decision" => TraceEvent::RescheduleDecision {
                at,
                keep_seconds: extract_json_f64(line, "keep_seconds")?,
                move_seconds: extract_json_f64(line, "move_seconds")?,
                move_cost_seconds: extract_json_f64(line, "move_cost_seconds")?,
                migrated: extract_json_bool(line, "migrated")?,
            },
            "job_submitted" => TraceEvent::JobSubmitted {
                job: idx("job")?,
                kind: extract_json_str(line, "class")?,
                at,
            },
            "job_dispatched" => TraceEvent::JobDispatched {
                job: idx("job")?,
                at,
                attempt: extract_json_u64(line, "attempt")? as u32,
            },
            "job_retried" => TraceEvent::JobRetried {
                job: idx("job")?,
                at,
                attempt: extract_json_u64(line, "attempt")? as u32,
            },
            "job_backfilled" => TraceEvent::JobBackfilled {
                job: idx("job")?,
                at,
                reservation: SimTime(extract_json_u64(line, "reservation")?),
            },
            "job_work_measured" => TraceEvent::JobWorkMeasured {
                job: idx("job")?,
                at,
                dedicated_seconds: extract_json_f64(line, "dedicated_seconds")?,
            },
            "job_completed" => TraceEvent::JobCompleted {
                job: idx("job")?,
                at,
                exec_seconds: extract_json_f64(line, "exec_seconds")?,
            },
            "job_failed" => TraceEvent::JobFailed {
                job: idx("job")?,
                at,
                attempts: extract_json_u64(line, "attempts")? as u32,
            },
            _ => return None,
        })
    }

    /// Parse a whole JSONL stream, skipping unparseable lines (see
    /// [`TraceEvent::from_json`]). Returns the events plus the count of
    /// non-empty lines that did not parse.
    pub fn from_jsonl(text: &str) -> (Vec<TraceEvent>, usize) {
        let mut events = Vec::new();
        let mut skipped = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match TraceEvent::from_json(line) {
                Some(e) => events.push(e),
                None => skipped += 1,
            }
        }
        (events, skipped)
    }
}

/// Receiver for [`TraceEvent`]s.
///
/// Emission sites guard with [`EventSink::enabled`] before constructing
/// an event, so a disabled sink costs one virtual call per potential
/// event and nothing else.
pub trait EventSink {
    /// Whether this sink wants events at all. Emission sites skip event
    /// construction entirely when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects events in memory, for tests and in-process analysis.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams events as JSONL (one [`TraceEvent::to_json`] object per
/// line) to any [`Write`] target.
///
/// Write errors are captured rather than panicking; check
/// [`WriterSink::take_error`] after the run.
#[derive(Debug)]
pub struct WriterSink<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> WriterSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> WriterSink<W> {
        WriterSink {
            writer,
            error: None,
        }
    }

    /// The first write error encountered, if any (consumes it).
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for WriterSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.writer, "{}", event.to_json()) {
            self.error = Some(e);
        }
    }
}

/// Aggregate view of an event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Events per kind, alphabetically ordered.
    pub by_kind: BTreeMap<String, usize>,
    /// Earliest event timestamp.
    pub first_at: Option<SimTime>,
    /// Latest event timestamp.
    pub last_at: Option<SimTime>,
}

impl TraceSummary {
    /// Summarize an in-memory event stream.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        Self::from_kinds(events.iter().map(|e| (e.kind().to_string(), e.at())))
    }

    /// Summarize a JSONL stream produced by [`WriterSink`]. Lines that
    /// do not carry a recognizable `kind` field are ignored.
    pub fn from_jsonl(text: &str) -> TraceSummary {
        Self::from_kinds(text.lines().filter_map(|line| {
            let kind = extract_json_str(line, "kind")?;
            let at = extract_json_u64(line, "at").unwrap_or(0);
            Some((kind, SimTime(at)))
        }))
    }

    fn from_kinds(kinds: impl Iterator<Item = (String, SimTime)>) -> TraceSummary {
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        let mut events = 0usize;
        let mut first_at: Option<SimTime> = None;
        let mut last_at: Option<SimTime> = None;
        for (kind, at) in kinds {
            *by_kind.entry(kind).or_insert(0) += 1;
            events += 1;
            first_at = Some(first_at.map_or(at, |f| f.min(at)));
            last_at = Some(last_at.map_or(at, |l| l.max(at)));
        }
        TraceSummary {
            events,
            by_kind,
            first_at,
            last_at,
        }
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "events: {}", self.events);
        if let (Some(f), Some(l)) = (self.first_at, self.last_at) {
            let _ = writeln!(
                out,
                "span: {:.3}s .. {:.3}s",
                f.as_secs_f64(),
                l.as_secs_f64()
            );
        }
        let width = self.by_kind.keys().map(|k| k.len()).max().unwrap_or(0);
        for (kind, n) in &self.by_kind {
            let _ = writeln!(out, "  {kind:width$}  {n}");
        }
        out
    }

    /// The summary as a JSON object.
    pub fn to_json(&self) -> String {
        let kinds: Vec<String> = self
            .by_kind
            .iter()
            .map(|(k, n)| format!("\"{}\":{n}", json_escape(k)))
            .collect();
        format!(
            "{{\"events\":{},\"first_at\":{},\"last_at\":{},\"by_kind\":{{{}}}}}",
            self.events,
            json_opt_time(self.first_at),
            json_opt_time(self.last_at),
            kinds.join(",")
        )
    }
}

/// Pull a `"key":"value"` string field out of a one-line JSON object
/// without a full parser (the format is our own, from
/// [`TraceEvent::to_json`]).
fn extract_json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    // Unescape up to the closing quote, honoring the escapes
    // `json_escape` produces.
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Pull a `"key":123` integer field out of a one-line JSON object.
fn extract_json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull a `"key":<number>` float field out of a one-line JSON object.
/// A `null` value (how [`json_f64`] spells non-finite floats) parses as
/// NaN so the enclosing event survives the round-trip.
fn extract_json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("null") {
        return Some(f64::NAN);
    }
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Pull a `"key":true|false` field out of a one-line JSON object.
fn extract_json_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Where two JSONL streams first diverge.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// That line in the left stream (`None` if the stream ended).
    pub left: Option<String>,
    /// That line in the right stream (`None` if the stream ended).
    pub right: Option<String>,
}

/// Compare two JSONL streams line by line; `None` means identical.
///
/// This is the mechanical form of the determinism guarantee: two runs
/// with the same seed and configuration must produce identical streams.
pub fn first_divergence(a: &str, b: &str) -> Option<Divergence> {
    let mut left = a.lines();
    let mut right = b.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (left.next(), right.next()) {
            (None, None) => return None,
            (l, r) if l == r => continue,
            (l, r) => {
                return Some(Divergence {
                    line,
                    left: l.map(str::to_string),
                    right: r.map(str::to_string),
                })
            }
        }
    }
}

/// Total busy (compute) seconds per host, from
/// [`TraceEvent::ComputeFinish`] events.
pub fn host_busy_seconds(events: &[TraceEvent]) -> BTreeMap<HostId, f64> {
    let mut busy: BTreeMap<HostId, f64> = BTreeMap::new();
    for e in events {
        if let TraceEvent::ComputeFinish {
            host,
            elapsed_seconds,
            ..
        } = e
        {
            *busy.entry(*host).or_insert(0.0) += elapsed_seconds.max(0.0);
        }
    }
    busy
}

/// Per-host utilization over time: for each host, the fraction of each
/// `bucket_seconds`-wide bucket spent computing, from the
/// `[at - elapsed, at]` interval of every [`TraceEvent::ComputeFinish`].
/// Buckets cover `[0, last event]`. Overlapping workers on one host can
/// push a bucket above 1.0 (demand utilization, same convention as
/// `apples_grid::metrics`).
pub fn host_utilization_timeline(
    events: &[TraceEvent],
    bucket_seconds: f64,
) -> BTreeMap<HostId, Vec<f64>> {
    let bucket_seconds = if bucket_seconds > 0.0 {
        bucket_seconds
    } else {
        1.0
    };
    let end = events
        .iter()
        .map(|e| e.at().as_secs_f64())
        .fold(0.0f64, f64::max);
    let n_buckets = (end / bucket_seconds).ceil() as usize;
    let mut out: BTreeMap<HostId, Vec<f64>> = BTreeMap::new();
    if n_buckets == 0 {
        return out;
    }
    for e in events {
        if let TraceEvent::ComputeFinish {
            host,
            at,
            elapsed_seconds,
        } = e
        {
            let fin = at.as_secs_f64();
            let start = (fin - elapsed_seconds.max(0.0)).max(0.0);
            let buckets = out.entry(*host).or_insert_with(|| vec![0.0; n_buckets]);
            let first = (start / bucket_seconds).floor() as usize;
            let last = ((fin / bucket_seconds).ceil() as usize).min(n_buckets);
            for (i, b) in buckets.iter_mut().enumerate().take(last).skip(first) {
                let b_start = i as f64 * bucket_seconds;
                let b_end = b_start + bucket_seconds;
                let overlap = (fin.min(b_end) - start.max(b_start)).max(0.0);
                *b += overlap / bucket_seconds;
            }
        }
    }
    out
}

/// Queue depth over time: jobs submitted (or scheduled for retry) but
/// not yet dispatched. Returns `(time, depth)` change points in event
/// order.
pub fn queue_depth_timeline(events: &[TraceEvent]) -> Vec<(SimTime, usize)> {
    let mut depth = 0usize;
    let mut out = Vec::new();
    for e in events {
        match e {
            TraceEvent::JobSubmitted { at, .. } | TraceEvent::JobRetried { at, .. } => {
                depth += 1;
                out.push((*at, depth));
            }
            TraceEvent::JobDispatched { at, .. } => {
                depth = depth.saturating_sub(1);
                out.push((*at, depth));
            }
            _ => {}
        }
    }
    out
}

/// Per-job decision latency: seconds from submission to first dispatch.
pub fn decision_latency_seconds(events: &[TraceEvent]) -> BTreeMap<usize, f64> {
    let mut submitted: BTreeMap<usize, SimTime> = BTreeMap::new();
    let mut out: BTreeMap<usize, f64> = BTreeMap::new();
    for e in events {
        match e {
            TraceEvent::JobSubmitted { job, at, .. } => {
                submitted.entry(*job).or_insert(*at);
            }
            TraceEvent::JobDispatched { job, at, .. } => {
                if let Some(&sub) = submitted.get(job) {
                    out.entry(*job)
                        .or_insert_with(|| at.saturating_sub(sub).as_secs_f64());
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        assert!(sink.enabled());
        sink.record(TraceEvent::JobSubmitted {
            job: 0,
            kind: "jacobi2d".into(),
            at: s(1.0),
        });
        sink.record(TraceEvent::JobDispatched {
            job: 0,
            at: s(2.0),
            attempt: 1,
        });
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].kind(), "job_submitted");
        assert_eq!(sink.events[1].at(), s(2.0));
    }

    #[test]
    fn writer_sink_emits_jsonl() {
        let mut sink = WriterSink::new(Vec::new());
        sink.record(TraceEvent::ComputeStart {
            host: HostId(3),
            at: s(1.5),
            work_mflop: 100.0,
        });
        sink.record(TraceEvent::HostFaultInjected {
            host: HostId(1),
            at: s(10.0),
            recover: None,
        });
        assert!(sink.take_error().is_none());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"kind\":\"compute_start\",\"at\":1500000,\"host\":3,\"work_mflop\":100}"
        );
        assert!(lines[1].contains("\"recover\":null"));
    }

    #[test]
    fn json_escapes_strings_and_non_finite() {
        let e = TraceEvent::ForecastIssued {
            resource: "cpu:\"x\"".into(),
            at: s(0.0),
            predicted: f64::NAN,
            observed: 0.5,
            error: 0.1,
            method: "mean\n".into(),
        };
        let j = e.to_json();
        assert!(j.contains("cpu:\\\"x\\\""));
        assert!(j.contains("\"predicted\":null"));
        assert!(j.contains("mean\\n"));
    }

    #[test]
    fn summary_counts_kinds_from_events_and_jsonl() {
        let events = vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi2d".into(),
                at: s(1.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: s(2.0),
                attempt: 1,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: s(5.0),
                exec_seconds: 3.0,
            },
        ];
        let sum = TraceSummary::from_events(&events);
        assert_eq!(sum.events, 3);
        assert_eq!(sum.by_kind["job_submitted"], 1);
        assert_eq!(sum.first_at, Some(s(1.0)));
        assert_eq!(sum.last_at, Some(s(5.0)));

        let jsonl: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let sum2 = TraceSummary::from_jsonl(&jsonl);
        assert_eq!(sum, sum2);
        assert!(sum.render().contains("job_completed"));
        assert!(sum.to_json().contains("\"events\":3"));
    }

    #[test]
    fn backfill_event_round_trips_through_json() {
        let e = TraceEvent::JobBackfilled {
            job: 7,
            at: s(12.5),
            reservation: s(90.0),
        };
        assert_eq!(e.kind(), "job_backfilled");
        assert_eq!(e.at(), s(12.5));
        let j = e.to_json();
        assert_eq!(
            j,
            "{\"kind\":\"job_backfilled\",\"at\":12500000,\"job\":7,\"reservation\":90000000}"
        );
        assert_eq!(TraceEvent::from_json(&j), Some(e));
    }

    #[test]
    fn divergence_reports_first_differing_line() {
        assert!(first_divergence("a\nb\n", "a\nb\n").is_none());
        let d = first_divergence("a\nb\nc\n", "a\nx\nc\n").unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.left.as_deref(), Some("b"));
        assert_eq!(d.right.as_deref(), Some("x"));
        // Length mismatch: the shorter stream "ends".
        let d = first_divergence("a\n", "a\nb\n").unwrap();
        assert_eq!(d.line, 2);
        assert!(d.left.is_none());
        assert_eq!(d.right.as_deref(), Some("b"));
    }

    #[test]
    fn busy_seconds_and_utilization_timeline() {
        let events = vec![
            TraceEvent::ComputeFinish {
                host: HostId(0),
                at: s(10.0),
                elapsed_seconds: 10.0,
            },
            TraceEvent::ComputeFinish {
                host: HostId(1),
                at: s(10.0),
                elapsed_seconds: 5.0,
            },
        ];
        let busy = host_busy_seconds(&events);
        assert_eq!(busy[&HostId(0)], 10.0);
        assert_eq!(busy[&HostId(1)], 5.0);
        let tl = host_utilization_timeline(&events, 5.0);
        // Host 0 computed over [0, 10]: both buckets full.
        assert!((tl[&HostId(0)][0] - 1.0).abs() < 1e-9);
        assert!((tl[&HostId(0)][1] - 1.0).abs() < 1e-9);
        // Host 1 computed over [5, 10]: second bucket only.
        assert!(tl[&HostId(1)][0].abs() < 1e-9);
        assert!((tl[&HostId(1)][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_and_decision_latency() {
        let events = vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi2d".into(),
                at: s(1.0),
            },
            TraceEvent::JobSubmitted {
                job: 1,
                kind: "react-pipe".into(),
                at: s(2.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: s(3.0),
                attempt: 1,
            },
            TraceEvent::JobDispatched {
                job: 1,
                at: s(6.0),
                attempt: 1,
            },
        ];
        let depths = queue_depth_timeline(&events);
        assert_eq!(
            depths,
            vec![(s(1.0), 1), (s(2.0), 2), (s(3.0), 1), (s(6.0), 0)]
        );
        let lat = decision_latency_seconds(&events);
        assert!((lat[&0] - 2.0).abs() < 1e-9);
        assert!((lat[&1] - 4.0).abs() < 1e-9);
    }
}
