//! Static pre-run validation for testbed and fault configurations.
//!
//! A simulation that panics (or silently never completes) twenty
//! simulated hours into a run wastes far more than the millisecond it
//! takes to check the configuration up front. This module walks an
//! instantiated [`Topology`] (and optionally a [`FaultSpec`]) and
//! produces *typed* diagnostics for every problem it can prove
//! statically:
//!
//! * hosts that cannot reach each other (no route),
//! * routes that name links the topology does not have,
//! * zero/negative/non-finite bandwidth or MFLOP rates,
//! * hosts or links whose availability is pinned at zero for the whole
//!   horizon (work routed there never completes),
//! * fault windows that are inverted or start beyond the horizon,
//! * per-host memory demand exceeding every host's capacity.
//!
//! The checks are advisory by design: [`ValidationReport::into_result`]
//! turns a non-empty report into a single [`SimError::Invalid`] for
//! callers that want hard rejection (the grid service does this at
//! construction), while `cli validate` prints the full list.

use crate::fault::FaultSpec;
use crate::net::{SegmentId, Topology};
use crate::time::SimTime;
use std::fmt;

/// One statically-provable configuration problem.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigIssue {
    /// The simulation horizon is zero: nothing can ever run.
    ZeroHorizon,
    /// A link's bandwidth is NaN or infinite.
    NonFiniteBandwidth {
        /// Link name.
        link: String,
        /// The offending bandwidth in Mbit/s.
        value: f64,
    },
    /// A link's bandwidth is zero or negative.
    NonPositiveBandwidth {
        /// Link name.
        link: String,
        /// The offending bandwidth in Mbit/s.
        value: f64,
    },
    /// A host's MFLOP rate is NaN or infinite.
    NonFiniteMflops {
        /// Host name.
        host: String,
        /// The offending rate in Mflop/s.
        value: f64,
    },
    /// A host's MFLOP rate is zero or negative.
    NonPositiveMflops {
        /// Host name.
        host: String,
        /// The offending rate in Mflop/s.
        value: f64,
    },
    /// A host's memory capacity is NaN, infinite, zero or negative.
    BadMemory {
        /// Host name.
        host: String,
        /// The offending capacity in MB.
        value: f64,
    },
    /// No route exists between two hosts.
    UnreachableHosts {
        /// Source host name.
        from: String,
        /// Destination host name.
        to: String,
    },
    /// A registered route names a link id the topology does not have.
    RouteViaUnknownLink {
        /// Source host name.
        from: String,
        /// Destination host name.
        to: String,
        /// The out-of-range link id.
        link: usize,
    },
    /// A link whose availability is zero across the whole horizon.
    DeadLink {
        /// Link name.
        link: String,
    },
    /// A host whose availability is zero across the whole horizon.
    DeadHost {
        /// Host name.
        host: String,
    },
    /// A fault names a host id the topology does not have.
    FaultOnUnknownHost {
        /// The out-of-range host id.
        host: usize,
    },
    /// A fault names a link id the topology does not have.
    FaultOnUnknownLink {
        /// The out-of-range link id.
        link: usize,
    },
    /// A fault recovers at or before the moment it strikes.
    InvertedFaultWindow {
        /// Name of the faulted host or link.
        resource: String,
        /// When the fault strikes.
        at: SimTime,
        /// When it claims to recover (not after `at`).
        recover: SimTime,
    },
    /// A fault strikes at or beyond the horizon and can never fire.
    FaultBeyondHorizon {
        /// Name of the faulted host or link.
        resource: String,
        /// When the fault strikes.
        at: SimTime,
        /// The simulation horizon it falls outside of.
        horizon: SimTime,
    },
    /// Per-host resident memory exceeds every host's capacity.
    MemoryOvercommit {
        /// Description of the demand (e.g. the job kind).
        what: String,
        /// Best-case per-host resident demand in MB.
        needed_mb: f64,
        /// The largest host memory in the topology, in MB.
        capacity_mb: f64,
    },
}

impl ConfigIssue {
    /// Stable machine-readable code for this diagnostic class.
    pub fn code(&self) -> &'static str {
        match self {
            ConfigIssue::ZeroHorizon => "zero-horizon",
            ConfigIssue::NonFiniteBandwidth { .. } => "non-finite-bandwidth",
            ConfigIssue::NonPositiveBandwidth { .. } => "non-positive-bandwidth",
            ConfigIssue::NonFiniteMflops { .. } => "non-finite-mflops",
            ConfigIssue::NonPositiveMflops { .. } => "non-positive-mflops",
            ConfigIssue::BadMemory { .. } => "bad-memory",
            ConfigIssue::UnreachableHosts { .. } => "unreachable-hosts",
            ConfigIssue::RouteViaUnknownLink { .. } => "route-via-unknown-link",
            ConfigIssue::DeadLink { .. } => "dead-link",
            ConfigIssue::DeadHost { .. } => "dead-host",
            ConfigIssue::FaultOnUnknownHost { .. } => "fault-on-unknown-host",
            ConfigIssue::FaultOnUnknownLink { .. } => "fault-on-unknown-link",
            ConfigIssue::InvertedFaultWindow { .. } => "inverted-fault-window",
            ConfigIssue::FaultBeyondHorizon { .. } => "fault-beyond-horizon",
            ConfigIssue::MemoryOvercommit { .. } => "memory-overcommit",
        }
    }
}

impl fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigIssue::ZeroHorizon => {
                write!(f, "simulation horizon is zero; nothing can run")
            }
            ConfigIssue::NonFiniteBandwidth { link, value } => {
                write!(f, "link `{link}` has non-finite bandwidth {value} Mbit/s")
            }
            ConfigIssue::NonPositiveBandwidth { link, value } => {
                write!(f, "link `{link}` has non-positive bandwidth {value} Mbit/s")
            }
            ConfigIssue::NonFiniteMflops { host, value } => {
                write!(f, "host `{host}` has non-finite speed {value} Mflop/s")
            }
            ConfigIssue::NonPositiveMflops { host, value } => {
                write!(f, "host `{host}` has non-positive speed {value} Mflop/s")
            }
            ConfigIssue::BadMemory { host, value } => {
                write!(f, "host `{host}` has unusable memory capacity {value} MB")
            }
            ConfigIssue::UnreachableHosts { from, to } => {
                write!(f, "no route from host `{from}` to host `{to}`")
            }
            ConfigIssue::RouteViaUnknownLink { from, to, link } => {
                write!(
                    f,
                    "route `{from}` -> `{to}` passes through unknown link id {link}"
                )
            }
            ConfigIssue::DeadLink { link } => {
                write!(
                    f,
                    "link `{link}` has zero availability over the whole horizon; \
                     transfers routed through it never complete"
                )
            }
            ConfigIssue::DeadHost { host } => {
                write!(
                    f,
                    "host `{host}` has zero availability over the whole horizon; \
                     work placed there never completes"
                )
            }
            ConfigIssue::FaultOnUnknownHost { host } => {
                write!(f, "fault names unknown host id {host}")
            }
            ConfigIssue::FaultOnUnknownLink { link } => {
                write!(f, "fault names unknown link id {link}")
            }
            ConfigIssue::InvertedFaultWindow {
                resource,
                at,
                recover,
            } => {
                write!(
                    f,
                    "fault on `{resource}` recovers at {recover} which is not after \
                     it strikes at {at}"
                )
            }
            ConfigIssue::FaultBeyondHorizon {
                resource,
                at,
                horizon,
            } => {
                write!(
                    f,
                    "fault on `{resource}` strikes at {at}, at or beyond the \
                     horizon {horizon}"
                )
            }
            ConfigIssue::MemoryOvercommit {
                what,
                needed_mb,
                capacity_mb,
            } => {
                write!(
                    f,
                    "{what} needs {needed_mb:.1} MB resident per host but the \
                     largest host has {capacity_mb:.1} MB"
                )
            }
        }
    }
}

/// The collected diagnostics from a validation pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationReport {
    /// Every issue found, in discovery order.
    pub issues: Vec<ConfigIssue>,
}

impl ValidationReport {
    /// True when no issues were found.
    pub fn is_ok(&self) -> bool {
        self.issues.is_empty()
    }

    /// Record one issue.
    pub fn push(&mut self, issue: ConfigIssue) {
        self.issues.push(issue);
    }

    /// Append every issue from `other`.
    pub fn merge(&mut self, other: ValidationReport) {
        self.issues.extend(other.issues);
    }

    /// Collapse into a hard error for callers that refuse bad configs.
    pub fn into_result(self) -> Result<(), crate::SimError> {
        if self.issues.is_empty() {
            return Ok(());
        }
        let joined = self
            .issues
            .iter()
            .map(ConfigIssue::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        Err(crate::SimError::Invalid(joined))
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for issue in &self.issues {
            writeln!(f, "[{}] {}", issue.code(), issue)?;
        }
        Ok(())
    }
}

/// Statically validate an instantiated topology.
pub fn validate_topology(topo: &Topology) -> ValidationReport {
    let mut report = ValidationReport::default();
    let horizon = topo.horizon();

    if horizon == SimTime::ZERO {
        report.push(ConfigIssue::ZeroHorizon);
    }

    for link in topo.links() {
        let bw = link.spec.bandwidth_mbps;
        if !bw.is_finite() {
            report.push(ConfigIssue::NonFiniteBandwidth {
                link: link.spec.name.clone(),
                value: bw,
            });
        } else if bw <= 0.0 {
            report.push(ConfigIssue::NonPositiveBandwidth {
                link: link.spec.name.clone(),
                value: bw,
            });
        }
        if horizon > SimTime::ZERO && link.mean_capacity(SimTime::ZERO, horizon) <= 0.0 {
            report.push(ConfigIssue::DeadLink {
                link: link.spec.name.clone(),
            });
        }
    }

    for host in topo.hosts() {
        let spec = &host.spec;
        if !spec.mflops.is_finite() {
            report.push(ConfigIssue::NonFiniteMflops {
                host: spec.name.clone(),
                value: spec.mflops,
            });
        } else if spec.mflops <= 0.0 {
            report.push(ConfigIssue::NonPositiveMflops {
                host: spec.name.clone(),
                value: spec.mflops,
            });
        }
        if !spec.mem_mb.is_finite() || spec.mem_mb <= 0.0 {
            report.push(ConfigIssue::BadMemory {
                host: spec.name.clone(),
                value: spec.mem_mb,
            });
        }
        if horizon > SimTime::ZERO && host.mean_availability(SimTime::ZERO, horizon) <= 0.0 {
            report.push(ConfigIssue::DeadHost {
                host: spec.name.clone(),
            });
        }
    }

    // Every ordered host pair must have a resolvable route whose links
    // all exist. Hosts on the same segment always share exactly that
    // segment's own link, so reachability is a property of *segment*
    // pairs: checking each ordered pair of host-bearing segments once
    // covers every host pair at O(S^2) instead of O(H^2) — on a
    // 1000-host fleet that is ~16k lookups, not a million. The first
    // host on each segment names the diagnostic.
    let n_links = topo.links().len();
    let mut seg_rep: Vec<Option<&str>> = vec![None; topo.segment_count()];
    for host in topo.hosts() {
        let rep = &mut seg_rep[host.spec.segment.0];
        if rep.is_none() {
            *rep = Some(&host.spec.name);
        }
    }
    for (a, from) in seg_rep.iter().enumerate() {
        let Some(from) = from else { continue };
        for (b, to) in seg_rep.iter().enumerate() {
            let Some(to) = to else { continue };
            if a == b {
                continue;
            }
            match topo.segment_route(SegmentId(a), SegmentId(b)) {
                Ok(Some(route)) => {
                    for l in route.iter() {
                        if l.0 >= n_links {
                            report.push(ConfigIssue::RouteViaUnknownLink {
                                from: (*from).to_string(),
                                to: (*to).to_string(),
                                link: l.0,
                            });
                        }
                    }
                }
                Ok(None) | Err(_) => {
                    report.push(ConfigIssue::UnreachableHosts {
                        from: (*from).to_string(),
                        to: (*to).to_string(),
                    });
                }
            }
        }
    }

    report
}

/// Statically validate a fault specification against a topology.
pub fn validate_faults(topo: &Topology, spec: &FaultSpec) -> ValidationReport {
    let mut report = ValidationReport::default();
    let horizon = topo.horizon();

    for hf in &spec.host_faults {
        let name = match topo.host(hf.host) {
            Ok(h) => h.spec.name.clone(),
            Err(_) => {
                report.push(ConfigIssue::FaultOnUnknownHost { host: hf.host.0 });
                continue;
            }
        };
        if let Some(rec) = hf.recover {
            if rec <= hf.at {
                report.push(ConfigIssue::InvertedFaultWindow {
                    resource: name.clone(),
                    at: hf.at,
                    recover: rec,
                });
            }
        }
        if hf.at >= horizon {
            report.push(ConfigIssue::FaultBeyondHorizon {
                resource: name,
                at: hf.at,
                horizon,
            });
        }
    }

    for lf in &spec.link_faults {
        let name = match topo.link(lf.link) {
            Ok(l) => l.spec.name.clone(),
            Err(_) => {
                report.push(ConfigIssue::FaultOnUnknownLink { link: lf.link.0 });
                continue;
            }
        };
        if let Some(rec) = lf.recover {
            if rec <= lf.at {
                report.push(ConfigIssue::InvertedFaultWindow {
                    resource: name.clone(),
                    at: lf.at,
                    recover: rec,
                });
            }
        }
        if lf.at >= horizon {
            report.push(ConfigIssue::FaultBeyondHorizon {
                resource: name,
                at: lf.at,
                horizon,
            });
        }
    }

    report
}

/// Check a best-case per-host resident memory demand against the
/// topology: even spread perfectly across hosts, does any host have the
/// capacity? Returns `None` when it fits.
pub fn memory_fit(topo: &Topology, what: &str, needed_mb_per_host: f64) -> Option<ConfigIssue> {
    let capacity = topo
        .hosts()
        .iter()
        .map(|h| h.spec.mem_mb)
        .fold(0.0f64, f64::max);
    if needed_mb_per_host > capacity {
        Some(ConfigIssue::MemoryOvercommit {
            what: what.to_owned(),
            needed_mb: needed_mb_per_host,
            capacity_mb: capacity,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::load::StepSeries;
    use crate::net::{LinkSpec, TopologyBuilder};
    use crate::testbed::{pcl_sdsc, TestbedConfig};

    fn two_host_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("eth", 10.0, SimTime::from_millis(1)));
        b.add_host(HostSpec::dedicated("a", 50.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 50.0, 64.0, seg));
        b.instantiate(SimTime::from_secs(3600), 1).unwrap()
    }

    #[test]
    fn shipped_testbed_is_clean() {
        let testbed = pcl_sdsc(&TestbedConfig::default()).unwrap();
        let report = validate_topology(&testbed.topo);
        assert!(report.is_ok(), "unexpected issues:\n{report}");
    }

    #[test]
    fn detects_zero_horizon() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("eth", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 50.0, 64.0, seg));
        let topo = b.instantiate(SimTime::ZERO, 1).unwrap();
        let report = validate_topology(&topo);
        assert!(report.issues.contains(&ConfigIssue::ZeroHorizon));
    }

    #[test]
    fn detects_unreachable_hosts() {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_segment(LinkSpec::dedicated("eth1", 10.0, SimTime::ZERO));
        let s2 = b.add_segment(LinkSpec::dedicated("eth2", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 50.0, 64.0, s1));
        b.add_host(HostSpec::dedicated("b", 50.0, 64.0, s2));
        // No connect(): the two segments are islands.
        let topo = b.instantiate(SimTime::from_secs(100), 1).unwrap();
        let report = validate_topology(&topo);
        let unreachable = report
            .issues
            .iter()
            .filter(|i| matches!(i, ConfigIssue::UnreachableHosts { .. }))
            .count();
        assert_eq!(unreachable, 2, "both directions reported:\n{report}");
    }

    #[test]
    fn detects_route_via_unknown_link() {
        let mut b = TopologyBuilder::new();
        let s1 = b.add_segment(LinkSpec::dedicated("eth1", 10.0, SimTime::ZERO));
        let s2 = b.add_segment(LinkSpec::dedicated("eth2", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 50.0, 64.0, s1));
        b.add_host(HostSpec::dedicated("b", 50.0, 64.0, s2));
        b.add_route(s1, s2, vec![crate::net::LinkId(99)]).unwrap();
        let topo = b.instantiate(SimTime::from_secs(100), 1).unwrap();
        let report = validate_topology(&topo);
        assert!(
            report
                .issues
                .iter()
                .any(|i| matches!(i, ConfigIssue::RouteViaUnknownLink { link: 99, .. })),
            "expected unknown-link route diagnostic:\n{report}"
        );
    }

    #[test]
    fn detects_dead_host_and_dead_link() {
        let mut topo = two_host_topology();
        topo.host_mut(crate::HostId(0))
            .unwrap()
            .set_availability(StepSeries::constant(0.0));
        topo.link_mut(crate::LinkId(0))
            .unwrap()
            .set_availability(StepSeries::constant(0.0));
        let report = validate_topology(&topo);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ConfigIssue::DeadHost { .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ConfigIssue::DeadLink { .. })));
    }

    #[test]
    fn detects_non_finite_and_non_positive_rates() {
        // NaN passes `<= 0.0` so HostSpec::validate/LinkSpec::validate
        // historically let it through; the validator must not.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("eth", f64::NAN, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", f64::NAN, f64::NAN, seg));
        let topo = b.instantiate(SimTime::from_secs(100), 1).unwrap();
        let report = validate_topology(&topo);
        let codes: Vec<&str> = report.issues.iter().map(|i| i.code()).collect();
        assert!(codes.contains(&"non-finite-bandwidth"), "{codes:?}");
        assert!(codes.contains(&"non-finite-mflops"), "{codes:?}");
        assert!(codes.contains(&"bad-memory"), "{codes:?}");
    }

    #[test]
    fn detects_fault_issues() {
        let topo = two_host_topology();
        let spec = FaultSpec {
            host_faults: vec![
                crate::HostFault {
                    host: crate::HostId(7),
                    at: SimTime::from_secs(10),
                    recover: None,
                },
                crate::HostFault {
                    host: crate::HostId(0),
                    at: SimTime::from_secs(100),
                    recover: Some(SimTime::from_secs(50)),
                },
                crate::HostFault {
                    host: crate::HostId(1),
                    at: SimTime::from_secs(7200),
                    recover: None,
                },
            ],
            link_faults: vec![crate::LinkFault {
                link: crate::LinkId(42),
                at: SimTime::from_secs(10),
                recover: None,
            }],
        };
        let report = validate_faults(&topo, &spec);
        let codes: Vec<&str> = report.issues.iter().map(|i| i.code()).collect();
        assert!(codes.contains(&"fault-on-unknown-host"), "{codes:?}");
        assert!(codes.contains(&"fault-on-unknown-link"), "{codes:?}");
        assert!(codes.contains(&"inverted-fault-window"), "{codes:?}");
        assert!(codes.contains(&"fault-beyond-horizon"), "{codes:?}");
    }

    #[test]
    fn detects_memory_overcommit() {
        let topo = two_host_topology(); // largest host: 64 MB
        assert!(memory_fit(&topo, "jacobi 1000x1000", 32.0).is_none());
        let issue = memory_fit(&topo, "jacobi 8000x8000", 512.0);
        assert!(
            matches!(issue, Some(ConfigIssue::MemoryOvercommit { .. })),
            "{issue:?}"
        );
    }

    #[test]
    fn report_collapses_into_typed_error() {
        let mut report = ValidationReport::default();
        assert!(report.clone().into_result().is_ok());
        report.push(ConfigIssue::ZeroHorizon);
        let err = report.into_result().unwrap_err();
        assert!(matches!(err, crate::SimError::Invalid(_)));
        assert!(err.to_string().contains("horizon"));
    }

    #[test]
    fn every_issue_code_is_distinct() {
        let issues = vec![
            ConfigIssue::ZeroHorizon,
            ConfigIssue::NonFiniteBandwidth {
                link: "l".into(),
                value: f64::NAN,
            },
            ConfigIssue::NonPositiveBandwidth {
                link: "l".into(),
                value: 0.0,
            },
            ConfigIssue::NonFiniteMflops {
                host: "h".into(),
                value: f64::NAN,
            },
            ConfigIssue::NonPositiveMflops {
                host: "h".into(),
                value: 0.0,
            },
            ConfigIssue::BadMemory {
                host: "h".into(),
                value: 0.0,
            },
            ConfigIssue::UnreachableHosts {
                from: "a".into(),
                to: "b".into(),
            },
            ConfigIssue::RouteViaUnknownLink {
                from: "a".into(),
                to: "b".into(),
                link: 9,
            },
            ConfigIssue::DeadLink { link: "l".into() },
            ConfigIssue::DeadHost { host: "h".into() },
            ConfigIssue::FaultOnUnknownHost { host: 9 },
            ConfigIssue::FaultOnUnknownLink { link: 9 },
            ConfigIssue::InvertedFaultWindow {
                resource: "h".into(),
                at: SimTime::from_secs(2),
                recover: SimTime::from_secs(1),
            },
            ConfigIssue::FaultBeyondHorizon {
                resource: "h".into(),
                at: SimTime::from_secs(2),
                horizon: SimTime::from_secs(1),
            },
            ConfigIssue::MemoryOvercommit {
                what: "w".into(),
                needed_mb: 2.0,
                capacity_mb: 1.0,
            },
        ];
        let mut codes: Vec<&str> = issues.iter().map(|i| i.code()).collect();
        let total = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), total, "codes must be unique");
        // And every Display is non-empty prose.
        assert!(issues.iter().all(|i| !i.to_string().is_empty()));
    }
}
