//! Host (execution site) model.
//!
//! A host has a nominal compute speed, a physical memory capacity, a
//! sharing policy, and — when time-shared — a background-load process
//! that determines how much of the nominal speed is *available* to the
//! application over time (§3.2 of the paper).
//!
//! Memory matters too: Figure 6 of the paper turns on the observation
//! that a partition which exceeds a host's physical memory "spills" and
//! suffers a dramatic slowdown from paging. We model this with a graded
//! multiplicative penalty on the compute rate once the resident set
//! exceeds physical memory.

use crate::error::SimError;
use crate::load::{LoadModel, StepSeries};
use crate::net::SegmentId;
use crate::time::SimTime;

/// Identifier of a host within a [`crate::net::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// How the host's CPU is shared among applications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SharingPolicy {
    /// The host is time-shared with other users: the application sees
    /// the availability process realized from the host's load model.
    TimeShared,
    /// The host is space-shared (dedicated once acquired), with a fixed
    /// wait to acquire the allocation. During execution the application
    /// receives the full nominal speed.
    SpaceShared {
        /// Queue wait before a dedicated allocation begins.
        wait: SimTime,
    },
}

/// Static description of a host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Human-readable name, e.g. `"pcl-sparc2"`.
    pub name: String,
    /// Nominal compute speed in Mflop/s.
    pub mflops: f64,
    /// Physical memory available to the application, in MB.
    pub mem_mb: f64,
    /// Sharing policy.
    pub sharing: SharingPolicy,
    /// Paging penalty coefficient `k`: once the resident set `r`
    /// exceeds memory `m`, the compute rate is divided by
    /// `1 + k * (r/m - 1)`. Larger `k` means a steeper cliff.
    pub paging_slowdown: f64,
    /// Network segment the host attaches to.
    pub segment: SegmentId,
    /// Background load model (only consulted when time-shared).
    pub load: LoadModel,
}

impl HostSpec {
    /// Convenience constructor for a time-shared workstation.
    pub fn workstation(
        name: &str,
        mflops: f64,
        mem_mb: f64,
        segment: SegmentId,
        load: LoadModel,
    ) -> Self {
        HostSpec {
            name: name.to_string(),
            mflops,
            mem_mb,
            sharing: SharingPolicy::TimeShared,
            paging_slowdown: 50.0,
            segment,
            load,
        }
    }

    /// Convenience constructor for a dedicated (space-shared) node.
    pub fn dedicated(name: &str, mflops: f64, mem_mb: f64, segment: SegmentId) -> Self {
        HostSpec {
            name: name.to_string(),
            mflops,
            mem_mb,
            sharing: SharingPolicy::SpaceShared {
                wait: SimTime::ZERO,
            },
            paging_slowdown: 50.0,
            segment,
            load: LoadModel::Constant(1.0),
        }
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.mflops <= 0.0 {
            return Err(SimError::NonPositive {
                what: "host mflops",
                value: self.mflops,
            });
        }
        if self.mem_mb <= 0.0 {
            return Err(SimError::NonPositive {
                what: "host mem_mb",
                value: self.mem_mb,
            });
        }
        if self.paging_slowdown < 0.0 {
            return Err(SimError::NonPositive {
                what: "paging_slowdown",
                value: self.paging_slowdown,
            });
        }
        Ok(())
    }
}

/// A host instantiated in a simulation: its spec plus the realized
/// availability process for the run.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier within the topology.
    pub id: HostId,
    /// Static description.
    pub spec: HostSpec,
    avail: StepSeries,
    /// Crash windows `(at, recover)` applied by fault injection;
    /// `None` recovery means the host never comes back. Used to
    /// attribute mid-run placement loss to this host.
    faults: Vec<(SimTime, Option<SimTime>)>,
}

impl Host {
    /// Instantiate a host, realizing its load model over `horizon` with
    /// the given seed. Space-shared hosts are fully available during
    /// execution regardless of their load model.
    pub fn instantiate(
        id: HostId,
        spec: HostSpec,
        horizon: SimTime,
        seed: u64,
    ) -> Result<Self, SimError> {
        spec.validate()?;
        let avail = match spec.sharing {
            SharingPolicy::TimeShared => spec.load.realize(horizon, seed),
            SharingPolicy::SpaceShared { .. } => StepSeries::constant(1.0),
        };
        Ok(Host {
            id,
            spec,
            avail,
            faults: Vec::new(),
        })
    }

    /// Record a crash window (see [`crate::fault::apply_faults`], which
    /// also pins the availability to zero over the same window).
    pub fn add_fault_window(&mut self, at: SimTime, recover: Option<SimTime>) {
        self.faults.push((at, recover));
        self.faults.sort_unstable_by_key(|&(at, _)| at);
    }

    /// Crash windows registered on this host, sorted by crash time.
    pub fn fault_windows(&self) -> &[(SimTime, Option<SimTime>)] {
        &self.faults
    }

    /// The realized CPU availability process.
    pub fn availability(&self) -> &StepSeries {
        &self.avail
    }

    /// Override the availability process (used by tests and by replays
    /// that pin all policies to the same realized conditions).
    pub fn set_availability(&mut self, avail: StepSeries) {
        self.avail = avail;
    }

    /// Startup delay before any work can begin (queue wait for
    /// space-shared hosts; zero for time-shared hosts).
    pub fn startup_wait(&self) -> SimTime {
        match self.spec.sharing {
            SharingPolicy::TimeShared => SimTime::ZERO,
            SharingPolicy::SpaceShared { wait } => wait,
        }
    }

    /// Multiplicative rate factor from memory pressure, in `(0, 1]`.
    ///
    /// `resident_mb <= mem_mb` ⇒ `1.0`; beyond that the rate is divided
    /// by `1 + k * (r/m - 1)`.
    pub fn memory_factor(&self, resident_mb: f64) -> f64 {
        if resident_mb <= self.spec.mem_mb {
            1.0
        } else {
            let over = resident_mb / self.spec.mem_mb - 1.0;
            1.0 / (1.0 + self.spec.paging_slowdown * over)
        }
    }

    /// Effective compute speed delivered to the application at time `t`
    /// with the given resident set, in Mflop/s.
    pub fn effective_speed_at(&self, t: SimTime, resident_mb: f64) -> f64 {
        self.spec.mflops * self.avail.value_at(t) * self.memory_factor(resident_mb)
    }

    /// Time at which `mflop` of work started at `start` completes,
    /// given a resident set of `resident_mb`.
    pub fn compute_finish(
        &self,
        start: SimTime,
        mflop: f64,
        resident_mb: f64,
    ) -> Result<SimTime, SimError> {
        let speed = self.spec.mflops * self.memory_factor(resident_mb);
        self.avail.time_to_complete(start, mflop, speed)
    }

    /// Like [`Host::compute_finish`], but surfaces mid-run host death
    /// as a [`SimError::PlacementLost`] revocation instead of a bare
    /// never-completes error. A placement is lost when
    ///
    /// * a registered crash window opens while the work is in flight
    ///   (even if the host later recovers — a reboot does not restore
    ///   application state), or
    /// * the availability process pins to zero forever before the work
    ///   finishes (a death observed from the load trace rather than an
    ///   injected fault).
    pub fn compute_finish_checked(
        &self,
        start: SimTime,
        mflop: f64,
        resident_mb: f64,
    ) -> Result<SimTime, SimError> {
        match self.compute_finish(start, mflop, resident_mb) {
            Ok(done) => match self.first_fault_within(start, done) {
                Some(at) => Err(SimError::PlacementLost {
                    host: self.id.0,
                    at,
                }),
                None => Ok(done),
            },
            Err(SimError::NeverCompletes { .. }) => Err(SimError::PlacementLost {
                host: self.id.0,
                at: self.dead_from(start).unwrap_or(start).max(start),
            }),
            Err(e) => Err(e),
        }
    }

    /// Earliest moment in `(start, done]` at which a registered crash
    /// window revokes a placement held over that span; `start` itself
    /// when the host is down at placement time.
    pub fn first_fault_within(&self, start: SimTime, done: SimTime) -> Option<SimTime> {
        self.faults
            .iter()
            .filter_map(|&(at, recover)| {
                if at > start && at < done {
                    Some(at)
                } else if at <= start && recover.map(|r| r > start).unwrap_or(true) {
                    Some(start)
                } else {
                    None
                }
            })
            .min()
    }

    /// The time from which this host delivers zero cycles forever, if
    /// its availability process ends pinned at zero at or after `from`.
    pub fn dead_from(&self, from: SimTime) -> Option<SimTime> {
        let pts = self.avail.points();
        let &(last_t, last_v) = pts.last()?;
        if last_v != 0.0 {
            return None;
        }
        // Walk back over the trailing zero segments to the moment the
        // terminal outage began.
        let mut t = last_t;
        for &(pt, pv) in pts.iter().rev().skip(1) {
            if pv != 0.0 {
                break;
            }
            t = pt;
        }
        Some(t.max(from))
    }

    /// Mean availability over a window — what a long-horizon observer
    /// (or the NWS CPU sensor) would report.
    pub fn mean_availability(&self, from: SimTime, to: SimTime) -> f64 {
        self.avail.mean(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> SegmentId {
        SegmentId(0)
    }

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    #[test]
    fn workstation_spec_validates() {
        let spec = HostSpec::workstation("ws", 10.0, 64.0, seg(), LoadModel::Constant(1.0));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut spec = HostSpec::workstation("ws", 10.0, 64.0, seg(), LoadModel::Constant(1.0));
        spec.mflops = 0.0;
        assert!(spec.validate().is_err());
        spec.mflops = 10.0;
        spec.mem_mb = -5.0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn dedicated_host_ignores_load_model() {
        let mut spec = HostSpec::dedicated("node", 100.0, 128.0, seg());
        spec.load = LoadModel::Constant(0.1); // would cripple a time-shared host
        let h = Host::instantiate(HostId(0), spec, s(100.0), 0).unwrap();
        assert_eq!(h.availability().value_at(s(50.0)), 1.0);
        let done = h.compute_finish(SimTime::ZERO, 1000.0, 1.0).unwrap();
        assert_eq!(done, s(10.0));
    }

    #[test]
    fn time_shared_host_sees_load() {
        let spec = HostSpec::workstation("ws", 100.0, 128.0, seg(), LoadModel::Constant(0.5));
        let h = Host::instantiate(HostId(0), spec, s(100.0), 0).unwrap();
        // 1000 Mflop at 100 Mflop/s nominal but 50% available ⇒ 20 s.
        let done = h.compute_finish(SimTime::ZERO, 1000.0, 1.0).unwrap();
        assert_eq!(done, s(20.0));
    }

    #[test]
    fn memory_factor_is_one_within_capacity() {
        let spec = HostSpec::dedicated("node", 100.0, 128.0, seg());
        let h = Host::instantiate(HostId(0), spec, s(1.0), 0).unwrap();
        assert_eq!(h.memory_factor(0.0), 1.0);
        assert_eq!(h.memory_factor(128.0), 1.0);
    }

    #[test]
    fn memory_factor_cliff_beyond_capacity() {
        let mut spec = HostSpec::dedicated("node", 100.0, 100.0, seg());
        spec.paging_slowdown = 50.0;
        let h = Host::instantiate(HostId(0), spec, s(1.0), 0).unwrap();
        // 2x overcommit: rate divided by 1 + 50*1 = 51.
        let f = h.memory_factor(200.0);
        assert!((f - 1.0 / 51.0).abs() < 1e-12);
        // Penalty deepens with overcommit.
        assert!(h.memory_factor(300.0) < f);
    }

    #[test]
    fn paging_slows_compute() {
        let spec = HostSpec::dedicated("node", 100.0, 100.0, seg());
        let h = Host::instantiate(HostId(0), spec, s(10_000.0), 0).unwrap();
        let fit = h.compute_finish(SimTime::ZERO, 1000.0, 50.0).unwrap();
        let spill = h.compute_finish(SimTime::ZERO, 1000.0, 200.0).unwrap();
        assert!(spill.as_secs_f64() > 10.0 * fit.as_secs_f64());
    }

    #[test]
    fn startup_wait_only_for_space_shared() {
        let ws = Host::instantiate(
            HostId(0),
            HostSpec::workstation("ws", 10.0, 64.0, seg(), LoadModel::Constant(1.0)),
            s(1.0),
            0,
        )
        .unwrap();
        assert_eq!(ws.startup_wait(), SimTime::ZERO);

        let mut spec = HostSpec::dedicated("node", 10.0, 64.0, seg());
        spec.sharing = SharingPolicy::SpaceShared { wait: s(3600.0) };
        let sp = Host::instantiate(HostId(1), spec, s(1.0), 0).unwrap();
        assert_eq!(sp.startup_wait(), s(3600.0));
    }

    #[test]
    fn effective_speed_combines_load_and_memory() {
        let spec = HostSpec::workstation("ws", 100.0, 100.0, seg(), LoadModel::Constant(0.5));
        let h = Host::instantiate(HostId(0), spec, s(10.0), 0).unwrap();
        let v = h.effective_speed_at(SimTime::ZERO, 200.0);
        // 100 * 0.5 * (1/51)
        assert!((v - 100.0 * 0.5 / 51.0).abs() < 1e-9);
    }

    #[test]
    fn checked_compute_revokes_on_mid_run_crash() {
        use crate::load::{Imposition, StepSeries};
        let spec = HostSpec::dedicated("node", 10.0, 64.0, seg());
        let mut h = Host::instantiate(HostId(3), spec, s(1000.0), 0).unwrap();
        // Crash at t = 5 with recovery at t = 50; 100 Mflop at
        // 10 Mflop/s started at t = 0 would be in flight at the crash.
        let crashed =
            StepSeries::constant(1.0).with_impositions(&[Imposition::new(s(5.0), s(50.0), 0.0)]);
        h.set_availability(crashed);
        h.add_fault_window(s(5.0), Some(s(50.0)));
        match h.compute_finish_checked(SimTime::ZERO, 100.0, 1.0) {
            Err(SimError::PlacementLost { host, at }) => {
                assert_eq!(host, 3);
                assert_eq!(at, s(5.0));
            }
            other => panic!("expected revocation, got {other:?}"),
        }
        // Work that finishes before the crash is untouched.
        assert_eq!(
            h.compute_finish_checked(SimTime::ZERO, 10.0, 1.0).unwrap(),
            s(1.0)
        );
        // Work placed after recovery is untouched.
        assert_eq!(
            h.compute_finish_checked(s(60.0), 10.0, 1.0).unwrap(),
            s(61.0)
        );
        // Work placed while the host is down is lost immediately.
        match h.compute_finish_checked(s(10.0), 10.0, 1.0) {
            Err(SimError::PlacementLost { at, .. }) => assert_eq!(at, s(10.0)),
            other => panic!("expected revocation, got {other:?}"),
        }
    }

    #[test]
    fn checked_compute_maps_trace_death_to_revocation() {
        // A host whose load trace pins it to zero forever — no fault
        // window registered, but the checked path still attributes it.
        let spec = HostSpec::workstation(
            "dies",
            10.0,
            64.0,
            seg(),
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(100.0), 0.0)]),
        );
        let h = Host::instantiate(HostId(7), spec, s(1000.0), 0).unwrap();
        assert_eq!(h.dead_from(SimTime::ZERO), Some(s(100.0)));
        match h.compute_finish_checked(SimTime::ZERO, 1e6, 1.0) {
            Err(SimError::PlacementLost { host, at }) => {
                assert_eq!(host, 7);
                assert_eq!(at, s(100.0));
            }
            other => panic!("expected revocation, got {other:?}"),
        }
        // A healthy host is never reported dead.
        let ok = Host::instantiate(
            HostId(8),
            HostSpec::dedicated("fine", 10.0, 64.0, seg()),
            s(10.0),
            0,
        )
        .unwrap();
        assert_eq!(ok.dead_from(SimTime::ZERO), None);
    }

    #[test]
    fn mean_availability_reported() {
        let spec = HostSpec::workstation(
            "ws",
            10.0,
            64.0,
            seg(),
            LoadModel::Periodic {
                high: 1.0,
                low: 0.0,
                half_period: s(10.0),
                phase: SimTime::ZERO,
            },
        );
        let h = Host::instantiate(HostId(0), spec, s(200.0), 0).unwrap();
        let m = h.mean_availability(SimTime::ZERO, s(200.0));
        assert!((m - 0.5).abs() < 1e-9);
    }
}
