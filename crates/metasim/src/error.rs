//! Error type shared across the simulator.

use crate::time::SimTime;
use std::fmt;

/// Errors surfaced by simulator operations.
///
/// The simulator is deliberately strict: malformed configurations
/// (unknown hosts, unroutable pairs, non-positive capacities) are
/// reported as errors rather than silently producing nonsense timings.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Referenced a host id that does not exist in the topology.
    UnknownHost(usize),
    /// Referenced a link id that does not exist in the topology.
    UnknownLink(usize),
    /// Referenced a segment id that does not exist in the topology.
    UnknownSegment(usize),
    /// No route exists between the two hosts.
    NoRoute {
        /// Source host id.
        from: usize,
        /// Destination host id.
        to: usize,
    },
    /// A quantity that must be positive was not (speed, bandwidth, ...).
    NonPositive {
        /// Name of the offending quantity.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The requested work never completes under the given availability
    /// process (e.g. availability is pinned at zero forever).
    NeverCompletes {
        /// Work still outstanding when progress stopped forever.
        work: f64,
    },
    /// A placement was revoked mid-run: the host it was running on
    /// failed after the work started. Unlike [`SimError::NeverCompletes`]
    /// this carries *which* resource died and *when*, so a scheduling
    /// layer can exclude the host and re-place the remnant work.
    PlacementLost {
        /// Id of the host whose failure revoked the placement.
        host: usize,
        /// Simulated time the placement was lost.
        at: SimTime,
    },
    /// A schedule referenced no hosts at all.
    EmptySchedule,
    /// A route was registered from a segment to itself. Same-segment
    /// traffic always crosses exactly the segment's own link; a
    /// self-route would silently shadow that invariant.
    SelfRoute {
        /// The segment id on both ends of the rejected route.
        segment: usize,
    },
    /// A route between two segments was registered twice (in either
    /// direction). Overwriting an existing route silently changes
    /// every transfer estimate that crosses the pair, so the table
    /// refuses rather than letting the last writer win.
    DuplicateRoute {
        /// One endpoint segment id of the rejected route.
        a: usize,
        /// The other endpoint segment id.
        b: usize,
    },
    /// A configuration constraint was violated.
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownHost(id) => write!(f, "unknown host id {id}"),
            SimError::UnknownLink(id) => write!(f, "unknown link id {id}"),
            SimError::UnknownSegment(id) => write!(f, "unknown segment id {id}"),
            SimError::NoRoute { from, to } => {
                write!(f, "no route between host {from} and host {to}")
            }
            SimError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            SimError::NeverCompletes { work } => {
                write!(
                    f,
                    "work of {work} units never completes (availability stuck at 0)"
                )
            }
            SimError::PlacementLost { host, at } => {
                write!(f, "placement on host {host} revoked at {at} (host failed)")
            }
            SimError::EmptySchedule => write!(f, "schedule assigns work to no hosts"),
            SimError::SelfRoute { segment } => {
                write!(f, "route from segment {segment} to itself rejected")
            }
            SimError::DuplicateRoute { a, b } => {
                write!(
                    f,
                    "route between segment {a} and segment {b} is already registered"
                )
            }
            SimError::Invalid(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(SimError::UnknownHost(3).to_string(), "unknown host id 3");
        assert!(SimError::NoRoute { from: 1, to: 2 }
            .to_string()
            .contains("host 1"));
        assert!(SimError::NonPositive {
            what: "bandwidth",
            value: -1.0
        }
        .to_string()
        .contains("bandwidth"));
        assert!(SimError::NeverCompletes { work: 5.0 }
            .to_string()
            .contains("never completes"));
    }
}
