//! Statistics helpers and execution-timeline rendering for experiment
//! harnesses.
//!
//! The paper reports *averages over back-to-back runs* (§5); benches and
//! figure binaries use [`Stats`] to summarize repeated trials, and
//! [`render_timeline`] draws a quick per-worker utilization bar for
//! interactive inspection of an SPMD run.

use crate::error::SimError;
use crate::exec::SpmdOutcome;

/// Summary statistics over a sample of f64 observations.
///
/// NaN observations are counted in [`Stats::nan_count`] and excluded
/// from every aggregate (same convention as
/// `apples_grid::metrics::percentile`), so one poisoned trial cannot
/// take the whole summary down with it.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Number of finite-or-infinite (non-NaN) observations.
    pub n: usize,
    /// NaN observations dropped from the aggregates.
    pub nan_count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median observation.
    pub median: f64,
}

impl Stats {
    /// Compute summary statistics. NaN samples are dropped (and
    /// counted); returns `None` when no non-NaN samples remain.
    pub fn from_samples(samples: &[f64]) -> Option<Stats> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        let nan_count = samples.len() - sorted.len();
        if sorted.is_empty() {
            return None;
        }
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Stats {
            n,
            nan_count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Coefficient of variation (std_dev / |mean|); 0 when the mean is
    /// 0. The magnitude of the mean is used so series centred below
    /// zero (e.g. signed forecast errors) still report a non-negative
    /// dispersion.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }
}

/// Render a per-worker compute/wait summary of an SPMD run as a text
/// bar chart: `#` is time spent computing, `.` is time waiting at the
/// barrier (communication + stragglers). One line per worker.
///
/// `labels` supplies one name per worker; `width` is the bar length in
/// characters. A label/worker-count mismatch is an
/// [`SimError::Invalid`] — library code must not panic on caller input.
pub fn render_timeline(
    outcome: &SpmdOutcome,
    labels: &[String],
    width: usize,
) -> Result<String, SimError> {
    if labels.len() != outcome.compute_seconds.len() {
        return Err(SimError::Invalid(format!(
            "one label per worker: {} labels for {} workers",
            labels.len(),
            outcome.compute_seconds.len()
        )));
    }
    let width = width.max(1);
    let name_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (w, label) in labels.iter().enumerate() {
        let compute = outcome.compute_seconds[w];
        let sync = outcome.sync_seconds[w];
        let total = compute + sync;
        let bars = if total > 0.0 {
            let filled = ((compute / total) * width as f64).round() as usize;
            let filled = filled.min(width);
            format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
        } else {
            " ".repeat(width)
        };
        out.push_str(&format!(
            "{label:>name_w$} |{bars}| {:5.1}% busy ({compute:.2}s compute, {sync:.2}s wait)\n",
            if total > 0.0 {
                compute / total * 100.0
            } else {
                0.0
            }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn stats_degrade_instead_of_panicking_on_nan() {
        // Regression, twice over: the percentile sort used
        // `partial_cmp.expect`, which aborted on NaN; then the NaN
        // survived the sort and poisoned mean/std_dev/max. Now NaNs are
        // filtered (and counted) so every aggregate stays finite.
        let s = Stats::from_samples(&[3.0, f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.nan_count, 1);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.std_dev.is_finite());
        // A sample of only NaNs reduces to the empty case.
        assert!(Stats::from_samples(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn timeline_shows_busy_fraction() {
        let outcome = SpmdOutcome {
            finish: SimTime::from_secs(10),
            iteration_ends: vec![SimTime::from_secs(10)],
            compute_seconds: vec![7.5, 2.5],
            sync_seconds: vec![2.5, 7.5],
        };
        let labels = vec!["fast".to_string(), "slow".to_string()];
        let t = render_timeline(&outcome, &labels, 8).unwrap();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("|######..|"), "{}", lines[0]);
        assert!(lines[1].contains("|##......|"), "{}", lines[1]);
        assert!(lines[0].contains("75.0% busy"));
    }

    #[test]
    fn timeline_handles_idle_workers() {
        let outcome = SpmdOutcome {
            finish: SimTime::ZERO,
            iteration_ends: vec![],
            compute_seconds: vec![0.0],
            sync_seconds: vec![0.0],
        };
        let t = render_timeline(&outcome, &["idle".to_string()], 4).unwrap();
        assert!(t.contains("0.0% busy"));
    }

    #[test]
    fn timeline_rejects_label_mismatch() {
        // Regression: this used to be an `assert_eq!` panic in library
        // code; a mismatch is ordinary caller error, so it is now a
        // `SimError::Invalid`.
        let outcome = SpmdOutcome {
            finish: SimTime::ZERO,
            iteration_ends: vec![],
            compute_seconds: vec![0.0, 0.0],
            sync_seconds: vec![0.0, 0.0],
        };
        let err = render_timeline(&outcome, &["only-one".to_string()], 4).unwrap_err();
        assert!(matches!(err, SimError::Invalid(_)));
        assert!(err.to_string().contains("one label per worker"));
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Stats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_samples(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_statistics() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 7: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median() {
        let s = Stats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Stats::from_samples(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
        let s2 = Stats::from_samples(&[4.0, 6.0]).unwrap();
        assert!(s2.cv() > 0.0);
    }

    #[test]
    fn cv_is_non_negative_for_negative_means() {
        // Regression: a series centred below zero (signed forecast
        // errors) reported a *negative* coefficient of variation.
        let neg = Stats::from_samples(&[-4.0, -6.0]).unwrap();
        let pos = Stats::from_samples(&[4.0, 6.0]).unwrap();
        assert!(neg.cv() > 0.0);
        assert!((neg.cv() - pos.cv()).abs() < 1e-12);
    }
}
