//! Statistics helpers and execution-timeline rendering for experiment
//! harnesses.
//!
//! The paper reports *averages over back-to-back runs* (§5); benches and
//! figure binaries use [`Stats`] to summarize repeated trials, and
//! [`render_timeline`] draws a quick per-worker utilization bar for
//! interactive inspection of an SPMD run.

use crate::exec::SpmdOutcome;

/// Summary statistics over a sample of f64 observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median observation.
    pub median: f64,
}

impl Stats {
    /// Compute summary statistics. Returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Stats {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        })
    }

    /// Coefficient of variation (std_dev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Render a per-worker compute/wait summary of an SPMD run as a text
/// bar chart: `#` is time spent computing, `.` is time waiting at the
/// barrier (communication + stragglers). One line per worker.
///
/// `labels` supplies one name per worker; `width` is the bar length in
/// characters.
pub fn render_timeline(outcome: &SpmdOutcome, labels: &[String], width: usize) -> String {
    assert_eq!(
        labels.len(),
        outcome.compute_seconds.len(),
        "one label per worker"
    );
    let width = width.max(1);
    let name_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (w, label) in labels.iter().enumerate() {
        let compute = outcome.compute_seconds[w];
        let sync = outcome.sync_seconds[w];
        let total = compute + sync;
        let bars = if total > 0.0 {
            let filled = ((compute / total) * width as f64).round() as usize;
            let filled = filled.min(width);
            format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
        } else {
            " ".repeat(width)
        };
        out.push_str(&format!(
            "{label:>name_w$} |{bars}| {:5.1}% busy ({compute:.2}s compute, {sync:.2}s wait)\n",
            if total > 0.0 {
                compute / total * 100.0
            } else {
                0.0
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    #[test]
    fn stats_degrade_instead_of_panicking_on_nan() {
        // Regression: the percentile sort used `partial_cmp.expect`,
        // which aborted summarization of any series containing a NaN.
        // With total_cmp the summary degrades (NaN sorts above +inf and
        // poisons mean/max) but the finite order statistics survive.
        let s = Stats::from_samples(&[3.0, f64::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.5, "NaN sorts last; finite median intact");
        assert!(s.max.is_nan());
        assert!(s.mean.is_nan());
    }

    #[test]
    fn timeline_shows_busy_fraction() {
        let outcome = SpmdOutcome {
            finish: SimTime::from_secs(10),
            iteration_ends: vec![SimTime::from_secs(10)],
            compute_seconds: vec![7.5, 2.5],
            sync_seconds: vec![2.5, 7.5],
        };
        let labels = vec!["fast".to_string(), "slow".to_string()];
        let t = render_timeline(&outcome, &labels, 8);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("|######..|"), "{}", lines[0]);
        assert!(lines[1].contains("|##......|"), "{}", lines[1]);
        assert!(lines[0].contains("75.0% busy"));
    }

    #[test]
    fn timeline_handles_idle_workers() {
        let outcome = SpmdOutcome {
            finish: SimTime::ZERO,
            iteration_ends: vec![],
            compute_seconds: vec![0.0],
            sync_seconds: vec![0.0],
        };
        let t = render_timeline(&outcome, &["idle".to_string()], 4);
        assert!(t.contains("0.0% busy"));
    }

    #[test]
    #[should_panic(expected = "one label per worker")]
    fn timeline_rejects_label_mismatch() {
        let outcome = SpmdOutcome {
            finish: SimTime::ZERO,
            iteration_ends: vec![],
            compute_seconds: vec![0.0, 0.0],
            sync_seconds: vec![0.0, 0.0],
        };
        render_timeline(&outcome, &["only-one".to_string()], 4);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(Stats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_samples(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_statistics() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 7: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median() {
        let s = Stats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Stats::from_samples(&[0.0, 0.0]).unwrap();
        assert_eq!(s.cv(), 0.0);
        let s2 = Stats::from_samples(&[4.0, 6.0]).unwrap();
        assert!(s2.cv() > 0.0);
    }
}
