//! First-class fault schedules: host crashes and link outages.
//!
//! The paper's closing argument (Figure 6) is that an application-level
//! scheduler degrades gracefully when a resource becomes unusable.
//! Outright death is the limit case of the "dynamically varying
//! performance capability" (§3) the agents are built to absorb, so the
//! simulator models it with the same machinery as background load: a
//! fault is an [`Imposition`] that pins a resource's availability to
//! zero over a window. What faults add on top of load is *attribution*
//! — a crashed host remembers its fault windows, and the executors turn
//! an overlap between a fault window and in-flight work into a
//! [`SimError::PlacementLost`] revocation signal instead of a bare
//! never-completes error.
//!
//! A [`FaultSpec`] is an explicit, replayable schedule of faults; a
//! [`FaultModel`] draws one from seeded Poisson processes, so fault
//! injection composes with [`crate::testbed::LoadProfile`] without
//! perturbing the load realization (faults are *applied to* an already
//! realized topology).

use crate::error::SimError;
use crate::host::HostId;
use crate::load::{Imposition, StepSeries};
use crate::net::{LinkId, Topology};
use crate::time::SimTime;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One host crash: the host delivers zero cycles from `at` until
/// `recover` (forever when `recover` is `None`). Work in flight on the
/// host when the crash hits is lost even if the host later recovers —
/// a reboot does not restore application state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostFault {
    /// The host that fails.
    pub host: HostId,
    /// Crash time.
    pub at: SimTime,
    /// Recovery time, or `None` for a permanent death.
    pub recover: Option<SimTime>,
}

/// One link outage: the link carries zero bandwidth from `at` until
/// `recover` (forever when `recover` is `None`). Transfers stall
/// through a recoverable outage and resume; a permanent outage makes
/// in-flight transfers report [`SimError::NeverCompletes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// The link that goes dark.
    pub link: LinkId,
    /// Outage start.
    pub at: SimTime,
    /// Recovery time, or `None` for a permanent outage.
    pub recover: Option<SimTime>,
}

/// A complete, replayable fault schedule for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Host crash/recover windows.
    pub host_faults: Vec<HostFault>,
    /// Link outage windows.
    pub link_faults: Vec<LinkFault>,
}

impl FaultSpec {
    /// The empty schedule: no faults.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Whether the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.host_faults.is_empty() && self.link_faults.is_empty()
    }

    /// Check every fault references a real resource and has a
    /// non-empty window.
    pub fn validate(&self, topo: &Topology) -> Result<(), SimError> {
        for f in &self.host_faults {
            topo.host(f.host)?;
            if let Some(r) = f.recover {
                if r <= f.at {
                    return Err(SimError::Invalid(format!(
                        "host fault on {} recovers at {r} before it starts at {}",
                        f.host, f.at
                    )));
                }
            }
        }
        for f in &self.link_faults {
            topo.link(f.link)?;
            if let Some(r) = f.recover {
                if r <= f.at {
                    return Err(SimError::Invalid(format!(
                        "link fault on l{} recovers at {r} before it starts at {}",
                        f.link.0, f.at
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A seeded generator of fault schedules: independent Poisson crash
/// processes per host and outage processes per link over a window of
/// simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Mean host crashes per host per hour of simulated time.
    pub host_crashes_per_hour: f64,
    /// Mean link outages per link per hour of simulated time.
    pub link_outages_per_hour: f64,
    /// Mean outage length for recoverable faults (exponentially
    /// distributed).
    pub mean_outage: SimTime,
    /// Probability in `[0, 1]` that a host crash is permanent.
    pub permanent_fraction: f64,
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            host_crashes_per_hour: 0.5,
            link_outages_per_hour: 0.25,
            mean_outage: SimTime::from_secs(600),
            permanent_fraction: 0.25,
        }
    }
}

impl FaultModel {
    /// Validate the model's parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        for (what, v) in [
            ("host_crashes_per_hour", self.host_crashes_per_hour),
            ("link_outages_per_hour", self.link_outages_per_hour),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(SimError::Invalid(format!(
                    "{what} must be finite and non-negative, got {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.permanent_fraction) {
            return Err(SimError::Invalid(format!(
                "permanent_fraction must be in [0, 1], got {}",
                self.permanent_fraction
            )));
        }
        if self.mean_outage <= SimTime::ZERO {
            return Err(SimError::Invalid(format!(
                "mean_outage must be positive, got {}",
                self.mean_outage
            )));
        }
        Ok(())
    }

    /// Draw a concrete fault schedule over `[from, until)` for the
    /// topology's hosts and links. Deterministic per seed, and
    /// independent of the topology's load realization.
    pub fn realize(
        &self,
        topo: &Topology,
        from: SimTime,
        until: SimTime,
        seed: u64,
    ) -> Result<FaultSpec, SimError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_u64);
        let mut spec = FaultSpec::none();
        let window = until.saturating_sub(from).as_secs_f64();
        if window <= 0.0 {
            return Ok(spec);
        }
        let host_rate_hz = self.host_crashes_per_hour / 3600.0;
        let link_rate_hz = self.link_outages_per_hour / 3600.0;
        for h in topo.hosts() {
            for (at, recover) in self.draw_process(&mut rng, from, until, host_rate_hz) {
                spec.host_faults.push(HostFault {
                    host: h.id,
                    at,
                    recover,
                });
            }
        }
        for (i, _) in topo.links().iter().enumerate() {
            for (at, recover) in self.draw_process(&mut rng, from, until, link_rate_hz) {
                spec.link_faults.push(LinkFault {
                    link: LinkId(i),
                    at,
                    recover,
                });
            }
        }
        Ok(spec)
    }

    /// One resource's Poisson fault arrivals over `[from, until)`.
    fn draw_process(
        &self,
        rng: &mut ChaCha8Rng,
        from: SimTime,
        until: SimTime,
        rate_hz: f64,
    ) -> Vec<(SimTime, Option<SimTime>)> {
        let mut out = Vec::new();
        if rate_hz <= 0.0 {
            return out;
        }
        let mut t = from.as_secs_f64();
        let end = until.as_secs_f64();
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate_hz;
            if t >= end {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            let permanent = rng.gen_range(0.0..1.0) < self.permanent_fraction;
            let recover = if permanent {
                None
            } else {
                let v: f64 = rng.gen_range(f64::EPSILON..1.0);
                let outage = -v.ln() * self.mean_outage.as_secs_f64();
                Some(at + SimTime::from_secs_f64(outage.max(1.0)))
            };
            out.push((at, recover));
            // A permanent death ends the host's process; further draws
            // would fault a corpse.
            if permanent {
                break;
            }
        }
        out
    }
}

/// Apply a fault schedule to a realized topology: pin each faulted
/// resource's availability to zero over its windows and record host
/// fault windows for revocation attribution by the executors.
pub fn apply_faults(topo: &mut Topology, spec: &FaultSpec) -> Result<(), SimError> {
    apply_faults_with_sink(topo, spec, &mut crate::simtrace::NoopSink)
}

/// [`apply_faults`], emitting one
/// [`crate::simtrace::TraceEvent::HostFaultInjected`] /
/// [`crate::simtrace::TraceEvent::LinkFaultInjected`] per fault window.
pub fn apply_faults_with_sink(
    topo: &mut Topology,
    spec: &FaultSpec,
    sink: &mut dyn crate::simtrace::EventSink,
) -> Result<(), SimError> {
    use crate::simtrace::TraceEvent;
    spec.validate(topo)?;
    for f in &spec.host_faults {
        let h = topo.host_mut(f.host)?;
        let crashed = faulted_series(h.availability(), f.at, f.recover);
        h.set_availability(crashed);
        h.add_fault_window(f.at, f.recover);
        if sink.enabled() {
            sink.record(TraceEvent::HostFaultInjected {
                host: f.host,
                at: f.at,
                recover: f.recover,
            });
        }
    }
    for f in &spec.link_faults {
        let l = topo.link_mut(f.link)?;
        let dark = faulted_series(l.availability(), f.at, f.recover);
        l.set_availability(dark);
        if sink.enabled() {
            sink.record(TraceEvent::LinkFaultInjected {
                link: f.link,
                at: f.at,
                recover: f.recover,
            });
        }
    }
    Ok(())
}

/// A resource's availability with one fault window cut out of it: zero
/// over `[at, recover)`, and — for a permanent fault — zero forever,
/// truncating whatever the load process would have done afterwards.
fn faulted_series(series: &StepSeries, at: SimTime, recover: Option<SimTime>) -> StepSeries {
    match recover {
        Some(until) => series.with_impositions(&[Imposition::new(at, until, 0.0)]),
        None => {
            let mut pts: Vec<(SimTime, f64)> = series
                .points()
                .iter()
                .copied()
                .filter(|&(t, _)| t < at)
                .collect();
            pts.push((at, 0.0));
            StepSeries::from_points(pts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo2() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 1024.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 1024.0, seg));
        b.instantiate(s(100_000.0), 0).unwrap()
    }

    #[test]
    fn applied_host_fault_zeroes_availability_in_window() {
        let mut topo = topo2();
        let spec = FaultSpec {
            host_faults: vec![HostFault {
                host: HostId(0),
                at: s(10.0),
                recover: Some(s(20.0)),
            }],
            link_faults: vec![],
        };
        apply_faults(&mut topo, &spec).unwrap();
        let h = topo.host(HostId(0)).unwrap();
        assert_eq!(h.availability().value_at(s(5.0)), 1.0);
        assert_eq!(h.availability().value_at(s(15.0)), 0.0);
        assert_eq!(h.availability().value_at(s(25.0)), 1.0);
        assert_eq!(h.fault_windows(), &[(s(10.0), Some(s(20.0)))]);
    }

    #[test]
    fn permanent_fault_never_recovers() {
        let mut topo = topo2();
        let spec = FaultSpec {
            host_faults: vec![HostFault {
                host: HostId(1),
                at: s(50.0),
                recover: None,
            }],
            link_faults: vec![],
        };
        apply_faults(&mut topo, &spec).unwrap();
        let h = topo.host(HostId(1)).unwrap();
        assert_eq!(h.availability().value_at(s(49.0)), 1.0);
        assert_eq!(h.availability().value_at(s(1e9)), 0.0);
        assert_eq!(h.dead_from(SimTime::ZERO), Some(s(50.0)));
    }

    #[test]
    fn link_fault_zeroes_capacity_in_window() {
        let mut topo = topo2();
        let spec = FaultSpec {
            host_faults: vec![],
            link_faults: vec![LinkFault {
                link: LinkId(0),
                at: s(5.0),
                recover: Some(s(9.0)),
            }],
        };
        apply_faults(&mut topo, &spec).unwrap();
        let l = topo.link(LinkId(0)).unwrap();
        assert_eq!(l.capacity_at(s(7.0)), 0.0);
        assert!(l.capacity_at(s(10.0)) > 0.0);
    }

    #[test]
    fn invalid_faults_rejected() {
        let mut topo = topo2();
        let unknown = FaultSpec {
            host_faults: vec![HostFault {
                host: HostId(99),
                at: s(1.0),
                recover: None,
            }],
            link_faults: vec![],
        };
        assert!(apply_faults(&mut topo, &unknown).is_err());
        let backwards = FaultSpec {
            host_faults: vec![HostFault {
                host: HostId(0),
                at: s(10.0),
                recover: Some(s(5.0)),
            }],
            link_faults: vec![],
        };
        assert!(apply_faults(&mut topo, &backwards).is_err());
    }

    #[test]
    fn model_realization_is_deterministic_and_scoped() {
        let topo = topo2();
        let model = FaultModel {
            host_crashes_per_hour: 20.0,
            link_outages_per_hour: 10.0,
            mean_outage: s(120.0),
            permanent_fraction: 0.3,
        };
        let a = model.realize(&topo, s(600.0), s(4200.0), 42).unwrap();
        let b = model.realize(&topo, s(600.0), s(4200.0), 42).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "20 crashes/host-hour must draw something");
        for f in &a.host_faults {
            assert!(f.at >= s(600.0) && f.at < s(4200.0));
            if let Some(r) = f.recover {
                assert!(r > f.at);
            }
        }
        let c = model.realize(&topo, s(600.0), s(4200.0), 43).unwrap();
        assert_ne!(a, c, "different seeds should draw different faults");
    }

    #[test]
    fn zero_rate_model_draws_nothing() {
        let topo = topo2();
        let model = FaultModel {
            host_crashes_per_hour: 0.0,
            link_outages_per_hour: 0.0,
            ..FaultModel::default()
        };
        let spec = model.realize(&topo, SimTime::ZERO, s(1e6), 1).unwrap();
        assert!(spec.is_empty());
    }

    #[test]
    fn invalid_model_rejected() {
        let bad = FaultModel {
            permanent_fraction: 1.5,
            ..FaultModel::default()
        };
        assert!(bad.validate().is_err());
        let neg = FaultModel {
            host_crashes_per_hour: -1.0,
            ..FaultModel::default()
        };
        assert!(neg.validate().is_err());
    }
}
