//! Property tests for the executors: physical bounds and monotonicity
//! of the SPMD, pipeline and work-queue simulations on randomized
//! inputs.

use metasim::exec::{
    simulate_pipeline, simulate_spmd, simulate_workqueue, PipelineJob, SpmdJob, SpmdPlacement,
    WorkQueueJob,
};
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime, Topology};
use proptest::prelude::*;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

fn topo(speeds: &[f64], avail: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::from_millis(1)));
    for (i, &sp) in speeds.iter().enumerate() {
        b.add_host(HostSpec::workstation(
            &format!("h{i}"),
            sp,
            4096.0,
            seg,
            LoadModel::Constant(avail),
        ));
    }
    b.instantiate(s(1e8), 0).expect("topo")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An SPMD run can never beat the per-worker compute lower bound:
    /// total iterations × work / (speed × availability).
    #[test]
    fn spmd_respects_compute_lower_bound(
        speeds in prop::collection::vec(1.0f64..100.0, 1..5),
        work in 1.0f64..100.0,
        iterations in 1usize..20,
        avail in 0.1f64..1.0,
    ) {
        let topo = topo(&speeds, avail);
        let k = speeds.len();
        let job = SpmdJob {
            placements: (0..k)
                .map(|w| SpmdPlacement {
                    host: HostId(w),
                    work_mflop: work,
                    resident_mb: 1.0,
                    sends: if k > 1 { vec![((w + 1) % k, 0.01)] } else { vec![] },
                })
                .collect(),
            iterations,
            start: SimTime::ZERO,
        };
        let out = simulate_spmd(&topo, &job).expect("run");
        // The slowest worker's pure-compute time bounds the makespan.
        let slowest = speeds.iter().copied().fold(f64::INFINITY, f64::min);
        let bound = iterations as f64 * work / (slowest * avail);
        prop_assert!(
            out.finish.as_secs_f64() + 1e-6 >= bound,
            "finish {} beats physical bound {bound}",
            out.finish.as_secs_f64()
        );
        // Iteration ends are monotone.
        for w in out.iteration_ends.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(out.iteration_ends.len(), iterations);
    }

    /// More iterations never finish earlier.
    #[test]
    fn spmd_is_monotone_in_iterations(
        work in 1.0f64..50.0,
        iters_a in 1usize..15,
        extra in 1usize..10,
    ) {
        let topo = topo(&[10.0, 20.0], 1.0);
        let job = |iterations| SpmdJob {
            placements: vec![
                SpmdPlacement {
                    host: HostId(0),
                    work_mflop: work,
                    resident_mb: 1.0,
                    sends: vec![(1, 0.01)],
                },
                SpmdPlacement {
                    host: HostId(1),
                    work_mflop: work,
                    resident_mb: 1.0,
                    sends: vec![(0, 0.01)],
                },
            ],
            iterations,
            start: SimTime::ZERO,
        };
        let a = simulate_spmd(&topo, &job(iters_a)).expect("a");
        let b = simulate_spmd(&topo, &job(iters_a + extra)).expect("b");
        prop_assert!(b.finish >= a.finish);
    }

    /// Pipeline makespan is bounded below by each stage's total work
    /// and above by the fully-serialized sum.
    #[test]
    fn pipeline_bounds(
        n_units in 1usize..30,
        prod in 1.0f64..50.0,
        cons in 1.0f64..50.0,
        mb in 0.01f64..5.0,
        depth in 1usize..6,
    ) {
        let topo = topo(&[10.0, 10.0], 1.0);
        let job = PipelineJob {
            producer: HostId(0),
            consumer: HostId(1),
            n_units,
            producer_mflop_per_unit: prod,
            consumer_mflop_per_unit: cons,
            mb_per_unit: mb,
            producer_resident_mb: 1.0,
            consumer_resident_mb: 1.0,
            max_in_flight: depth,
            start: SimTime::ZERO,
        };
        let out = simulate_pipeline(&topo, &job).expect("run");
        let t = out.finish.as_secs_f64();
        let prod_total = n_units as f64 * prod / 10.0;
        let cons_total = n_units as f64 * cons / 10.0;
        let xfer_one = mb / 10.0; // 10 MB/s link
        let serial = n_units as f64 * (prod / 10.0 + cons / 10.0 + xfer_one + 0.002);
        prop_assert!(t + 1e-6 >= prod_total.max(cons_total), "t {t} below stage bound");
        prop_assert!(
            t <= serial + 1e-6,
            "t {t} exceeds fully-serialized bound {serial}"
        );
    }

    /// Deeper pipelines never run slower.
    #[test]
    fn pipeline_is_monotone_in_depth(
        n_units in 2usize..25,
        prod in 1.0f64..40.0,
        cons in 1.0f64..40.0,
        depth in 1usize..5,
    ) {
        let topo = topo(&[10.0, 10.0], 1.0);
        let job = |d| PipelineJob {
            producer: HostId(0),
            consumer: HostId(1),
            n_units,
            producer_mflop_per_unit: prod,
            consumer_mflop_per_unit: cons,
            mb_per_unit: 0.1,
            producer_resident_mb: 1.0,
            consumer_resident_mb: 1.0,
            max_in_flight: d,
            start: SimTime::ZERO,
        };
        let shallow = simulate_pipeline(&topo, &job(depth)).expect("shallow");
        let deep = simulate_pipeline(&topo, &job(depth + 1)).expect("deep");
        prop_assert!(deep.finish <= shallow.finish);
    }

    /// The work queue conserves chunks and respects the aggregate
    /// throughput bound.
    #[test]
    fn workqueue_conserves_chunks(
        speeds in prop::collection::vec(5.0f64..50.0, 1..5),
        chunks in 1usize..60,
        mflop in 1.0f64..50.0,
    ) {
        let topo = topo(&speeds, 1.0);
        let job = WorkQueueJob {
            master: HostId(0),
            workers: (0..speeds.len()).map(HostId).collect(),
            n_chunks: chunks,
            mflop_per_chunk: mflop,
            mb_per_chunk: 0.001,
            result_mb_per_chunk: 0.001,
            resident_mb: 1.0,
            start: SimTime::ZERO,
        };
        let out = simulate_workqueue(&topo, &job).expect("run");
        prop_assert_eq!(out.chunks_done.iter().sum::<usize>(), chunks);
        // Aggregate throughput bound: total work / sum of speeds.
        let agg: f64 = speeds.iter().sum();
        let bound = chunks as f64 * mflop / agg;
        prop_assert!(out.finish.as_secs_f64() + 1e-6 >= bound);
    }
}
