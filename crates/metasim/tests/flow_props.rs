//! Property tests for the fluid-flow transfer simulator: physical
//! bounds, work conservation and determinism on randomized transfer
//! batches.

use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{simulate_transfers, LinkSpec, TopologyBuilder, TransferReq};
use metasim::{HostId, SimTime, Topology};
use proptest::prelude::*;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// `hosts` hosts on one shared segment of `bw` MB/s.
fn segment_topo(hosts: usize, bw: f64) -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", bw, SimTime::ZERO));
    for i in 0..hosts {
        b.add_host(HostSpec::dedicated(&format!("h{i}"), 10.0, 64.0, seg));
    }
    b.instantiate(s(1e9), 0).expect("topo")
}

fn arb_reqs(hosts: usize) -> impl Strategy<Value = Vec<TransferReq>> {
    prop::collection::vec((0..hosts, 0..hosts, 0.1f64..50.0, 0u64..100), 1..20).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (from, to, mb, start_s))| TransferReq {
                from: HostId(from),
                to: HostId(to),
                mb,
                start: SimTime::from_secs(start_s),
                tag: i,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No transfer finishes faster than the link's full capacity would
    /// allow, and none is lost.
    #[test]
    fn transfers_respect_capacity_lower_bound(reqs in arb_reqs(4)) {
        let bw = 10.0;
        let topo = segment_topo(4, bw);
        let results = simulate_transfers(&topo, &reqs).expect("simulate");
        prop_assert_eq!(results.len(), reqs.len());
        for (req, res) in reqs.iter().zip(&results) {
            prop_assert_eq!(req.tag, res.tag);
            if req.from == req.to {
                prop_assert_eq!(res.delivered, req.start);
            } else {
                let floor = req.start + SimTime::from_secs_f64(req.mb / bw);
                // Delivered no earlier than the uncontended bound
                // (allow 2 µs of fixed-point rounding).
                prop_assert!(
                    res.delivered + SimTime::from_micros(2) >= floor,
                    "tag {} delivered {:?} before physical floor {:?}",
                    req.tag, res.delivered, floor
                );
            }
        }
    }

    /// The batch's overall makespan is at least total-bytes / capacity
    /// for bytes that actually cross the (single) shared link.
    #[test]
    fn shared_link_throughput_is_conserved(reqs in arb_reqs(4)) {
        let bw = 10.0;
        let topo = segment_topo(4, bw);
        let crossing: Vec<&TransferReq> =
            reqs.iter().filter(|r| r.from != r.to).collect();
        prop_assume!(!crossing.is_empty());
        let results = simulate_transfers(&topo, &reqs).expect("simulate");
        let earliest = crossing.iter().map(|r| r.start).min().unwrap();
        let last = reqs
            .iter()
            .zip(&results)
            .filter(|(r, _)| r.from != r.to)
            .map(|(_, res)| res.delivered)
            .max()
            .unwrap();
        let total_mb: f64 = crossing.iter().map(|r| r.mb).sum();
        let min_span = total_mb / bw;
        let span = last.saturating_sub(earliest).as_secs_f64();
        prop_assert!(
            span + 1e-5 >= min_span,
            "span {span}s cannot beat the capacity bound {min_span}s"
        );
    }

    /// Simulation is a pure function of its inputs.
    #[test]
    fn transfer_simulation_is_deterministic(reqs in arb_reqs(3)) {
        let topo = segment_topo(3, 7.5);
        let a = simulate_transfers(&topo, &reqs).expect("a");
        let b = simulate_transfers(&topo, &reqs).expect("b");
        prop_assert_eq!(a, b);
    }

    /// Adding background load on the link never speeds anything up.
    #[test]
    fn background_load_is_monotone(reqs in arb_reqs(3), avail in 0.1f64..1.0) {
        let free = segment_topo(3, 10.0);
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Constant(avail),
        ));
        for i in 0..3 {
            b.add_host(HostSpec::dedicated(&format!("h{i}"), 10.0, 64.0, seg));
        }
        let loaded = b.instantiate(s(1e9), 0).expect("topo");

        let fast = simulate_transfers(&free, &reqs).expect("free");
        let slow = simulate_transfers(&loaded, &reqs).expect("loaded");
        for (f, l) in fast.iter().zip(&slow) {
            prop_assert!(
                l.delivered + SimTime::from_micros(2) >= f.delivered,
                "load sped a transfer up: {:?} < {:?}",
                l.delivered,
                f.delivered
            );
        }
    }
}
