//! simlint CLI: lint the workspace's `.rs` files.
//!
//! Usage:
//!   simlint [--format text|json] [PATH ...]
//!
//! PATH defaults to `.` (the workspace root). Exit status is 0 when
//! every finding is covered by a reasoned allow directive, 1 when any
//! unallowed finding remains, 2 on usage or I/O errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut roots: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "simlint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("<missing>")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: simlint [--format text|json] [PATH ...]");
                println!();
                println!("Lints (see DESIGN.md for the policy table):");
                for lint in simlint::ALL_LINTS {
                    println!("  {:<16} {}", lint.name(), lint.hint());
                }
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("simlint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => roots.push(path.to_owned()),
        }
    }
    if roots.is_empty() {
        roots.push(".".to_owned());
    }

    let mut report = simlint::Report::default();
    for root in &roots {
        match simlint::lint_workspace(Path::new(root)) {
            Ok(r) => {
                report.findings.extend(r.findings);
                report.files_scanned += r.files_scanned;
            }
            Err(e) => {
                eprintln!("simlint: failed to scan {root}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
    }

    if report.unallowed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Clone, Copy)]
enum Format {
    Text,
    Json,
}
