//! simlint CLI: a thin wrapper over the shared lint driver (also
//! exposed as `apples-cli lint`).
//!
//! Usage:
//!   simlint [--format text|json|github] [--deny <lint>] [PATH ...]
//!
//! PATH defaults to `.` (the workspace root). Exit status is 0 when
//! every finding is covered by a reasoned allow directive, 1 when any
//! unallowed finding remains (or a denied lint fired), 2 on usage or
//! I/O errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    ExitCode::from(simlint::driver::run(std::env::args().skip(1)))
}
