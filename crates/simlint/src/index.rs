//! Workspace symbol index and approximate call graph.
//!
//! The index hangs function definitions off each file's item tree,
//! extracts call edges by token pattern, and resolves callee names
//! *approximately* — by path suffix for `a::b::f(..)` calls, by
//! same-file → same-crate → global preference for bare calls, and by
//! workspace-unique name for method calls. This is deliberately not
//! rustc name resolution; the imprecision is bounded and documented:
//!
//! * method calls resolve only when the name is not a common std method
//!   and at most two workspace functions carry it (both get an edge —
//!   an over-approximation);
//! * bare calls prefer same-file, then same-crate definitions, and give
//!   up beyond 3 global candidates;
//! * macro bodies, function pointers and trait-object dispatch produce
//!   no edges (an under-approximation).
//!
//! The result is good enough for `panic-reachability`: an edge that
//! does exist in the source is found whenever the callee name is
//! resolvable, and every edge carries its call-site position so the
//! pass can render real `file:line` chains.

use std::collections::BTreeMap;
use std::path::Path;

use crate::itemtree::ItemKind;
use crate::lints::{self, AllowDirective, Lint};
use crate::scanner::{ScannedFile, TokKind};

/// Per-file analysis context threaded through the workspace pipeline.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub scanned: ScannedFile,
    /// Policy-enabled lints for this path.
    pub enabled: Vec<Lint>,
    /// Parsed allow directives; `used` is updated by the index (panic
    /// sites sanctioned by a reasoned allow) and by `apply_allows`.
    pub directives: Vec<AllowDirective>,
}

/// One function definition in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the `FileCtx` slice.
    pub file: usize,
    /// Index into that file's item tree.
    pub item: usize,
    pub name: String,
    /// Module path + scope chain + name, e.g.
    /// `["metasim", "net", "RouteCache", "lookup"]`.
    pub qpath: Vec<String>,
    pub is_pub: bool,
    pub line: usize,
    pub col: usize,
}

impl FnDef {
    pub fn qpath_str(&self) -> String {
        self.qpath.join("::")
    }
}

/// A call edge: function `from` calls function `to` at `line:col` in
/// `from`'s file.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    pub from: usize,
    pub to: usize,
    pub line: usize,
    pub col: usize,
}

/// An unsanctioned panic site inside a function body.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// Function (index into `Index::fns`) containing the site.
    pub in_fn: usize,
    pub line: usize,
    /// Short site description, e.g. `.unwrap()` or `panic!`.
    pub desc: String,
}

/// The workspace-wide symbol index.
#[derive(Debug, Default)]
pub struct Index {
    pub fns: Vec<FnDef>,
    pub calls: Vec<CallEdge>,
    pub hazards: Vec<Hazard>,
}

/// Common std/core method names that must never resolve to a workspace
/// function of the same name — `.get(..)` is almost always a map, not
/// our `get`.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "binary_search",
    "borrow",
    "ceil",
    "chain",
    "checked_add",
    "checked_sub",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "ln",
    "log2",
    "map",
    "max",
    "min",
    "ne",
    "next",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sqrt",
    "step_by",
    "sum",
    "take",
    "to_bits",
    "to_owned",
    "to_string",
    "total_cmp",
    "trim",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "wrapping_add",
    "write",
    "zip",
];

/// Keywords that look like calls when followed by `(`.
const CALLISH_KEYWORDS: &[&str] = &[
    "as", "break", "continue", "else", "fn", "for", "if", "impl", "in", "let", "loop", "match",
    "mod", "move", "mut", "pub", "ref", "return", "struct", "trait", "unsafe", "use", "where",
    "while",
];

/// Module path segments for a workspace-relative file path:
/// `crates/metasim/src/exec/pipeline.rs` → `["metasim", "exec",
/// "pipeline"]`; `src/stats.rs` → `["suite", "stats"]`. `lib.rs`,
/// `main.rs` and `mod.rs` contribute no segment.
pub fn module_segs(rel: &str) -> Vec<String> {
    let mut comps: Vec<&str> = rel.split('/').collect();
    let file = comps.pop().unwrap_or("");
    let mut segs: Vec<String> = Vec::new();
    if comps.first() == Some(&"crates") {
        if let Some(krate) = comps.get(1) {
            segs.push((*krate).to_owned());
        }
        comps.drain(..comps.len().min(2));
    } else {
        segs.push("suite".to_owned());
    }
    for c in comps {
        if c != "src" {
            segs.push(c.to_owned());
        }
    }
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if !matches!(stem, "lib" | "main" | "mod") && !stem.is_empty() {
        segs.push(stem.to_owned());
    }
    segs
}

/// Crate name of a workspace-relative path (`"suite"` for the umbrella
/// package).
fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("suite")
    } else {
        "suite"
    }
}

impl Index {
    /// Build the index over every non-test file in the workspace,
    /// marking `panic-in-lib` allow directives `used` when they
    /// sanction a panic site.
    pub fn build(files: &mut [FileCtx]) -> Index {
        let mut idx = Index::default();

        // Pass 1: function definitions.
        for (fi, ctx) in files.iter().enumerate() {
            if crate::is_test_path(Path::new(&ctx.rel)) || ctx.scanned.tree.whole_file_test {
                continue;
            }
            let mod_segs = module_segs(&ctx.rel);
            for (ii, item) in ctx.scanned.tree.items.iter().enumerate() {
                if item.kind != ItemKind::Fn || item.is_test || item.name.is_empty() {
                    continue;
                }
                let mut qpath = mod_segs.clone();
                qpath.extend(ctx.scanned.tree.scope_path(ii));
                qpath.push(item.name.clone());
                idx.fns.push(FnDef {
                    file: fi,
                    item: ii,
                    name: item.name.clone(),
                    qpath,
                    is_pub: item.is_pub,
                    line: item.line,
                    col: item.col,
                });
            }
        }

        // Lookup tables.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_loc: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (id, f) in idx.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
            by_loc.insert((f.file, f.item), id);
        }

        // Pass 2: call edges and panic hazards.
        let mut edges: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        let mut hazards = Vec::new();
        for (fi, ctx) in files.iter_mut().enumerate() {
            if crate::is_test_path(Path::new(&ctx.rel)) || ctx.scanned.tree.whole_file_test {
                continue;
            }
            collect_calls(fi, ctx, &idx.fns, &by_name, &by_loc, &mut edges);
            collect_hazards(fi, ctx, &by_loc, &mut hazards);
        }
        idx.calls = edges
            .into_iter()
            .map(|((from, to), (line, col))| CallEdge {
                from,
                to,
                line,
                col,
            })
            .collect();
        idx.hazards = hazards;
        idx
    }
}

fn collect_calls(
    fi: usize,
    ctx: &FileCtx,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_loc: &BTreeMap<(usize, usize), usize>,
    edges: &mut BTreeMap<(usize, usize), (usize, usize)>,
) {
    let toks = &ctx.scanned.tokens;
    let tree = &ctx.scanned.tree;
    let caller_crate = crate_of(&ctx.rel);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        if CALLISH_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // A call: `name(` that is not a macro (`name!`) and not a
        // definition (`fn name(`).
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        let Some(caller_item) = tree.enclosing_fn(i) else {
            continue;
        };
        let Some(&from) = by_loc.get(&(fi, caller_item)) else {
            continue;
        };

        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let targets: Vec<usize> = if prev == Some(".") {
            // Method call: resolve only when workspace-unique-ish and
            // not shadowing a std method name.
            if STD_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            match by_name.get(t.text.as_str()) {
                Some(ids) if ids.len() <= 2 => ids.clone(),
                _ => continue,
            }
        } else if prev == Some(":") && i >= 2 && toks[i - 2].text == ":" {
            // Path call `a::b::f(..)`: collect segments backwards,
            // drop path-relative keywords, suffix-match qpaths.
            let mut segs = vec![t.text.clone()];
            let mut k = i;
            while k >= 3 && toks[k - 1].text == ":" && toks[k - 2].text == ":" {
                let s = &toks[k - 3];
                if s.kind != TokKind::Ident {
                    break;
                }
                segs.push(s.text.clone());
                k -= 3;
            }
            segs.reverse();
            segs.retain(|s| !matches!(s.as_str(), "crate" | "self" | "super" | "Self"));
            let cands: Vec<usize> = by_name
                .get(t.text.as_str())
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| fns[id].qpath.ends_with(&segs))
                        .collect()
                })
                .unwrap_or_default();
            if cands.is_empty() || cands.len() > 6 {
                continue;
            }
            cands
        } else {
            // Bare call: same file, then same crate, then a small
            // global candidate set.
            let Some(ids) = by_name.get(t.text.as_str()) else {
                continue;
            };
            let same_file: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| fns[id].file == fi)
                .collect();
            if !same_file.is_empty() {
                same_file
            } else {
                let same_crate: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| fns[id].qpath.first().is_some_and(|c| c == caller_crate))
                    .collect();
                if !same_crate.is_empty() {
                    same_crate
                } else if ids.len() <= 3 {
                    ids.clone()
                } else {
                    continue;
                }
            }
        };

        for to in targets {
            if to == from {
                continue;
            }
            edges.entry((from, to)).or_insert((t.line, t.col));
        }
    }
}

fn collect_hazards(
    fi: usize,
    ctx: &mut FileCtx,
    by_loc: &BTreeMap<(usize, usize), usize>,
    out: &mut Vec<Hazard>,
) {
    let toks = &ctx.scanned.tokens;
    let tree = &ctx.scanned.tree;
    for (i, desc) in lints::panic_sites(toks) {
        let line = toks[i].line;
        // A reasoned `allow(panic-in-lib)` sanctions the site for
        // reachability too (and counts as a use, even in crates where
        // the per-site lint is not policy-enabled).
        let mut sanctioned = false;
        for d in ctx.directives.iter_mut() {
            if d.lint == Some(Lint::PanicInLib)
                && d.reason.is_some()
                && (d.line == line || lints::next_code_line(&ctx.scanned, d.line) == Some(line))
            {
                d.used = true;
                sanctioned = true;
            }
        }
        if sanctioned {
            continue;
        }
        let Some(item) = tree.enclosing_fn(i) else {
            continue;
        };
        let Some(&in_fn) = by_loc.get(&(fi, item)) else {
            continue;
        };
        out.push(Hazard { in_fn, line, desc });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn ctx(rel: &str, src: &str) -> FileCtx {
        let scanned = scan(src, crate::is_test_path(Path::new(rel)));
        let directives = lints::parse_allows(&scanned.comments);
        FileCtx {
            rel: rel.to_owned(),
            scanned,
            enabled: crate::lints_for_path(Path::new(rel)),
            directives,
        }
    }

    #[test]
    fn module_segs_drop_lib_main_mod() {
        assert_eq!(module_segs("crates/metasim/src/lib.rs"), vec!["metasim"]);
        assert_eq!(
            module_segs("crates/metasim/src/exec/pipeline.rs"),
            vec!["metasim", "exec", "pipeline"]
        );
        assert_eq!(
            module_segs("crates/metasim/src/exec/mod.rs"),
            vec!["metasim", "exec"]
        );
        assert_eq!(module_segs("src/stats.rs"), vec!["suite", "stats"]);
    }

    #[test]
    fn indexes_fns_with_scope_qpaths() {
        let mut files = vec![ctx(
            "crates/metasim/src/net.rs",
            "pub struct Cache;\nimpl Cache { pub fn lookup(&self) {} }\npub fn route() {}\n",
        )];
        let idx = Index::build(&mut files);
        let qpaths: Vec<String> = idx.fns.iter().map(|f| f.qpath_str()).collect();
        assert_eq!(
            qpaths,
            vec!["metasim::net::Cache::lookup", "metasim::net::route"]
        );
        assert!(idx.fns.iter().all(|f| f.is_pub));
    }

    #[test]
    fn bare_and_path_calls_resolve() {
        let mut files = vec![
            ctx(
                "crates/grid/src/service.rs",
                "pub fn run() { helper(); metasim::net::route(); }\nfn helper() {}\n",
            ),
            ctx("crates/metasim/src/net.rs", "pub fn route() {}\n"),
        ];
        let idx = Index::build(&mut files);
        let edge_names: Vec<(String, String)> = idx
            .calls
            .iter()
            .map(|e| (idx.fns[e.from].name.clone(), idx.fns[e.to].name.clone()))
            .collect();
        assert!(edge_names.contains(&("run".into(), "helper".into())));
        assert!(edge_names.contains(&("run".into(), "route".into())));
    }

    #[test]
    fn std_method_names_do_not_resolve_to_workspace_fns() {
        let mut files = vec![
            ctx(
                "crates/grid/src/a.rs",
                "pub fn caller(m: &std::collections::BTreeMap<u32, u32>) { m.get(&1); }\n",
            ),
            ctx("crates/grid/src/b.rs", "pub fn get() { x.unwrap(); }\n"),
        ];
        let idx = Index::build(&mut files);
        assert!(idx.calls.is_empty(), "{:?}", idx.calls);
    }

    #[test]
    fn unique_method_calls_resolve_cross_crate() {
        let mut files = vec![
            ctx(
                "crates/grid/src/a.rs",
                "pub fn caller(h: &Hat) { h.as_pipeline(); }\n",
            ),
            ctx(
                "crates/apps/src/react3d.rs",
                "impl Hat { pub fn as_pipeline(&self) { x.expect(\"boom\"); } }\n",
            ),
        ];
        let idx = Index::build(&mut files);
        assert_eq!(idx.calls.len(), 1);
        assert_eq!(idx.fns[idx.calls[0].to].name, "as_pipeline");
        assert_eq!(idx.hazards.len(), 1, "the expect is a hazard");
    }

    #[test]
    fn allowed_panic_sites_are_not_hazards_and_mark_directives_used() {
        let mut files = vec![ctx(
            "crates/metasim/src/t.rs",
            "pub fn f() {\n    // simlint: allow(panic-in-lib): checked above\n    x.unwrap();\n}\n",
        )];
        let idx = Index::build(&mut files);
        assert!(idx.hazards.is_empty());
        assert!(files[0].directives[0].used);
    }

    #[test]
    fn test_code_produces_no_symbols_or_hazards() {
        let mut files = vec![
            ctx("tests/it.rs", "pub fn helper() { x.unwrap(); }\n"),
            ctx(
                "crates/metasim/src/m.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n",
            ),
        ];
        let idx = Index::build(&mut files);
        assert!(idx.fns.is_empty());
        assert!(idx.hazards.is_empty());
    }
}
