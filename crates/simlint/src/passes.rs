//! The v2 analysis passes: `panic-reachability` (workspace-level, over
//! the call graph), `rng-discipline` and `sim-time-hygiene` (per-file,
//! over the item tree).

use std::collections::{BTreeMap, VecDeque};

use crate::index::{FileCtx, Index};
use crate::lints::{snippet_at, Finding, Lint};
use crate::scanner::{ScannedFile, TokKind};

// --- panic-reachability ------------------------------------------------

/// For every `pub` fn in a reachability-enabled file, report when an
/// unsanctioned panic site is reachable through the call graph, and
/// render the shortest call path as rustc-style notes.
///
/// Multi-source reverse BFS from the hazard-carrying functions: each
/// function's recorded `step` is its first edge on a shortest path
/// toward a hazard, so path rendering is O(path) and deterministic
/// (adjacency and sources are sorted by qualified name).
pub fn panic_reachability(idx: &Index, files: &[FileCtx], out: &mut Vec<Finding>) {
    if idx.hazards.is_empty() {
        return;
    }
    let n = idx.fns.len();

    // First (lowest-line) hazard per function.
    let mut hazard_in: BTreeMap<usize, (usize, String)> = BTreeMap::new();
    for h in &idx.hazards {
        let e = hazard_in
            .entry(h.in_fn)
            .or_insert_with(|| (h.line, h.desc.clone()));
        if h.line < e.0 {
            *e = (h.line, h.desc.clone());
        }
    }

    // Reverse adjacency: callee -> (caller, call line, call col).
    let mut rev: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for e in &idx.calls {
        rev[e.to].push((e.from, e.line, e.col));
    }
    for v in rev.iter_mut() {
        v.sort_by(|a, b| {
            (idx.fns[a.0].qpath_str(), a.1, a.2).cmp(&(idx.fns[b.0].qpath_str(), b.1, b.2))
        });
    }

    let mut dist: Vec<Option<u32>> = vec![None; n];
    // fn -> (callee one step closer to the hazard, call line, call col).
    let mut step: Vec<Option<(usize, usize, usize)>> = vec![None; n];
    let mut sources: Vec<usize> = hazard_in.keys().copied().collect();
    sources.sort_by_key(|&f| idx.fns[f].qpath_str());
    let mut queue = VecDeque::new();
    for s in sources {
        dist[s] = Some(0);
        queue.push_back(s);
    }
    while let Some(g) = queue.pop_front() {
        let dg = dist[g].unwrap_or(0);
        for &(c, line, col) in &rev[g] {
            if dist[c].is_none() {
                dist[c] = Some(dg + 1);
                step[c] = Some((g, line, col));
                queue.push_back(c);
            }
        }
    }

    for (id, f) in idx.fns.iter().enumerate() {
        let Some(d) = dist[id] else { continue };
        if !f.is_pub {
            continue;
        }
        let ctx = &files[f.file];
        if !ctx.enabled.contains(&Lint::PanicReachability) {
            continue;
        }
        let mut notes = Vec::new();
        let mut cur = id;
        while let Some((g, line, _)) = step[cur] {
            notes.push(format!(
                "`{}` calls `{}` ({}:{})",
                idx.fns[cur].qpath_str(),
                idx.fns[g].qpath_str(),
                files[idx.fns[cur].file].rel,
                line
            ));
            cur = g;
        }
        let Some((hline, hdesc)) = hazard_in.get(&cur) else {
            continue;
        };
        notes.push(format!(
            "panic site: `{}` ({}:{})",
            hdesc, files[idx.fns[cur].file].rel, hline
        ));
        let message = if d == 0 {
            format!("pub fn `{}` contains a panic site", f.qpath_str())
        } else {
            format!(
                "a panic site is reachable from pub fn `{}` ({} call{} deep)",
                f.qpath_str(),
                d,
                if d == 1 { "" } else { "s" }
            )
        };
        out.push(Finding {
            lint: Lint::PanicReachability,
            file: ctx.rel.clone(),
            line: f.line,
            col: f.col,
            width: f.name.chars().count().max(1),
            snippet: snippet_at(&ctx.scanned, f.line),
            message,
            allowed: false,
            allow_reason: None,
            notes,
        });
    }
}

// --- rng-discipline ----------------------------------------------------

const RNG_CTORS: &[&str] = &["seed_from_u64", "from_seed", "from_entropy"];

fn is_screaming_const(name: &str) -> bool {
    name.len() > 1
        && name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Dataflow discipline for RNG construction, per-file over the item
/// tree:
///
/// * `from_entropy()` never (it is `thread_rng` with extra steps);
/// * `seed_from_u64(..)` / `from_seed(..)` arguments must carry seed
///   evidence — a `seed`-named identifier, an enclosing-fn parameter, a
///   `SCREAMING_CASE` constant, `self`, or a literal;
/// * a function that already takes an `Rng`-typed parameter must not
///   construct a second stream (it silently forks the sequence);
/// * a `move` closure must not capture a locally-constructed RNG (the
///   stream escapes the scope that seeded it).
pub fn check_rng_discipline(rel: &str, scanned: &ScannedFile, out: &mut Vec<Finding>) {
    let toks = &scanned.tokens;
    let tree = &scanned.tree;

    // Which fns carry a caller-supplied RNG.
    let fn_has_rng_param = |item: usize| -> bool {
        let it = &tree.items[item];
        !it.rng_generics.is_empty()
            || it
                .params
                .iter()
                .any(|p| p.ty.iter().any(|t| t.contains("Rng")))
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        if !RNG_CTORS.contains(&t.text.as_str()) || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        let encl = tree.enclosing_fn(i);

        if t.text == "from_entropy" {
            out.push(crate::lints::finding(
                Lint::RngDiscipline,
                rel,
                scanned,
                t,
                "`from_entropy()` draws OS entropy and breaks seeded replay".into(),
            ));
            continue;
        }

        // Second stream next to a caller-supplied RNG.
        if let Some(item) = encl {
            if fn_has_rng_param(item) {
                out.push(crate::lints::finding(
                    Lint::RngDiscipline,
                    rel,
                    scanned,
                    t,
                    format!(
                        "fn `{}` takes a caller-supplied RNG but constructs a second \
                         stream with `{}`",
                        tree.items[item].name, t.text
                    ),
                ));
                continue;
            }
        }

        // Seed-evidence dataflow over the argument tokens.
        let args_end = crate::lints::skip_parens(toks, i + 1);
        let args = &toks[i + 2..args_end.saturating_sub(1).max(i + 2)];
        let param_names: Vec<&str> = encl
            .map(|item| {
                tree.items[item]
                    .params
                    .iter()
                    .flat_map(|p| p.names.iter().map(String::as_str))
                    .collect()
            })
            .unwrap_or_default();
        let has_evidence = args.iter().any(|a| match a.kind {
            TokKind::Number => true,
            TokKind::Ident => {
                a.text.to_ascii_lowercase().contains("seed")
                    || a.text == "self"
                    || is_screaming_const(&a.text)
                    || param_names.contains(&a.text.as_str())
            }
            TokKind::Punct => false,
        });
        if !has_evidence {
            out.push(crate::lints::finding(
                Lint::RngDiscipline,
                rel,
                scanned,
                t,
                format!(
                    "`{}(..)` has no visible seed source — seed from an explicit \
                     parameter or constant",
                    t.text
                ),
            ));
        }
    }

    check_move_captured_rng(rel, scanned, out);
}

/// Locally-constructed RNG bindings captured by `move` closures.
fn check_move_captured_rng(rel: &str, scanned: &ScannedFile, out: &mut Vec<Finding>) {
    let toks = &scanned.tokens;

    // `let [mut] NAME = <init containing an RNG constructor>;`
    let mut rng_locals: Vec<(&str, usize)> = Vec::new(); // (name, let token idx)
    for i in 0..toks.len() {
        if toks[i].text != "let" || toks[i].in_test {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Scan the initializer to `;`, looking for RNG construction.
        let mut k = j + 1;
        let mut is_rng = false;
        while k < toks.len() && toks[k].text != ";" {
            if toks[k].kind == TokKind::Ident
                && (RNG_CTORS.contains(&toks[k].text.as_str()) || toks[k].text.contains("ChaCha"))
            {
                is_rng = true;
            }
            k += 1;
        }
        if is_rng {
            rng_locals.push((name_tok.text.as_str(), i));
        }
    }
    if rng_locals.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        if toks[i].text != "move" || toks[i].in_test {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "|") {
            continue;
        }
        // Closure params end at the next `|`; the body is the brace
        // block or the expression up to a depth-0 `,` / `;` / `)`.
        let Some(params_end) = (i + 2..toks.len()).find(|&k| toks[k].text == "|") else {
            continue;
        };
        let body_start = params_end + 1;
        let body_end = if toks.get(body_start).is_some_and(|t| t.text == "{") {
            let mut depth = 0i64;
            let mut k = body_start;
            loop {
                match toks.get(k).map(|t| t.text.as_str()) {
                    Some("{") => depth += 1,
                    Some("}") => {
                        depth -= 1;
                        if depth == 0 {
                            break k + 1;
                        }
                    }
                    None => break k,
                    _ => {}
                }
                k += 1;
            }
        } else {
            let mut depth = 0i64;
            let mut k = body_start;
            loop {
                match toks.get(k).map(|t| t.text.as_str()) {
                    Some("(" | "[" | "{") => depth += 1,
                    Some(")" | "]" | "}") if depth > 0 => depth -= 1,
                    Some(")" | "]" | "}") => break k,
                    Some("," | ";") if depth == 0 => break k,
                    None => break k,
                    _ => {}
                }
                k += 1;
            }
        };
        for &(name, let_tok) in &rng_locals {
            // The binding must pre-date the closure.
            if let_tok >= i {
                continue;
            }
            let captured = toks[body_start..body_end.min(toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == name);
            if captured {
                out.push(crate::lints::finding(
                    Lint::RngDiscipline,
                    rel,
                    scanned,
                    &toks[i],
                    format!(
                        "`move` closure captures RNG `{name}`; the stream outlives \
                         the scope that seeded it"
                    ),
                ));
                break;
            }
        }
    }
}

// --- sim-time-hygiene --------------------------------------------------

/// Micros-per-second float literals that signal a hand-rolled
/// seconds↔micros conversion.
fn is_micros_literal(text: &str) -> bool {
    let t = text.replace('_', "");
    matches!(
        t.as_str(),
        "1000000.0" | "1000000f64" | "1000000.0f64" | "1e6" | "1e6f64" | "1.0e6"
    )
}

/// Integer-microsecond discipline for sim time (PR 5): simulated time
/// lives in `SimTime` (u64 micros) and converts to f64 seconds once at
/// the reporting boundary. Per statement (token run between `;`/`{`/
/// `}`), flag:
///
/// * `+=` or `.sum()` over `as_secs_f64()` values — accumulating f64
///   seconds compounds rounding error that integer micros avoid;
/// * `from_secs_f64(.. as_secs_f64 ..)` — a lossy SimTime→f64→SimTime
///   round-trip;
/// * integer casts (`as u64`/`u32`/`usize`/`i64`) in a statement that
///   also converts through seconds (`as_secs_f64` or a `1_000_000.0`
///   style literal) — a hand-rolled lossy micros conversion.
pub fn check_sim_time_hygiene(rel: &str, scanned: &ScannedFile, out: &mut Vec<Finding>) {
    let toks = &scanned.tokens;
    let mut start = 0usize;
    let mut i = 0usize;
    while i <= toks.len() {
        let at_boundary = i == toks.len() || matches!(toks[i].text.as_str(), ";" | "{" | "}");
        if !at_boundary {
            i += 1;
            continue;
        }
        let stmt = &toks[start..i];
        start = i + 1;
        i += 1;
        if stmt.is_empty() || stmt.iter().all(|t| t.in_test) {
            continue;
        }
        let has_secs = stmt
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "as_secs_f64");
        let has_micros_lit = stmt
            .iter()
            .any(|t| t.kind == TokKind::Number && is_micros_literal(&t.text));

        for (k, t) in stmt.iter().enumerate() {
            if t.in_test {
                continue;
            }
            // `+=` over seconds.
            if has_secs
                && t.text == "+"
                && stmt
                    .get(k + 1)
                    .is_some_and(|n| n.text == "=" && n.byte == t.byte_end())
            {
                out.push(crate::lints::finding(
                    Lint::SimTimeHygiene,
                    rel,
                    scanned,
                    t,
                    "f64 `+=` accumulation of sim-time seconds compounds rounding \
                     error; accumulate SimTime and convert once"
                        .into(),
                ));
            }
            // `.sum()` over seconds.
            if has_secs
                && t.kind == TokKind::Ident
                && t.text == "sum"
                && k > 0
                && stmt[k - 1].text == "."
                && stmt.get(k + 1).is_some_and(|n| n.text == "(")
            {
                out.push(crate::lints::finding(
                    Lint::SimTimeHygiene,
                    rel,
                    scanned,
                    t,
                    "`.sum()` over f64 sim-time seconds compounds rounding error; \
                     sum SimTime and convert once"
                        .into(),
                ));
            }
            // SimTime -> f64 -> SimTime round-trip.
            if t.kind == TokKind::Ident
                && t.text == "from_secs_f64"
                && stmt.get(k + 1).is_some_and(|n| n.text == "(")
            {
                let end = crate::lints::skip_parens(stmt, k + 1);
                let args = &stmt[k + 1..end.min(stmt.len())];
                if args.iter().any(|a| a.text == "as_secs_f64") {
                    out.push(crate::lints::finding(
                        Lint::SimTimeHygiene,
                        rel,
                        scanned,
                        t,
                        "SimTime round-trips through f64 seconds \
                         (`from_secs_f64(.. as_secs_f64() ..)`); stay in integer \
                         micros"
                            .into(),
                    ));
                }
            }
            // Lossy integer cast alongside a seconds conversion.
            if (has_secs || has_micros_lit)
                && t.text == "as"
                && stmt
                    .get(k + 1)
                    .is_some_and(|n| matches!(n.text.as_str(), "u64" | "u32" | "usize" | "i64"))
            {
                out.push(crate::lints::finding(
                    Lint::SimTimeHygiene,
                    rel,
                    scanned,
                    t,
                    format!(
                        "lossy `as {}` cast in a statement converting through f64 \
                         seconds; use SimTime's integer micros directly",
                        stmt[k + 1].text
                    ),
                ));
            }
        }
    }
}
