//! The lint passes and the allow-directive machinery.
//!
//! Each lint is a pattern over the token stream produced by
//! [`crate::scanner`]. Findings carry enough position/snippet context to
//! render rustc-style diagnostics, and can be suppressed by an inline
//! `// simlint: allow(<lint>): <reason>` directive — the reason is
//! mandatory; a reason-less or unknown-lint directive is itself reported
//! as `malformed-allow` and suppresses nothing.

use crate::scanner::{Comment, ScannedFile, TokKind, Token};

/// The lints simlint knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// Wall-clock / OS-entropy / iteration-order escapes in sim code.
    Nondeterminism,
    /// `partial_cmp(..).unwrap()/expect()/unwrap_or(..)` comparator chains.
    NanUnsafeCmp,
    /// `unwrap()`/`expect()`/`panic!`-family in non-test library code.
    PanicInLib,
    /// `f64`/`f32`-keyed `HashMap`/`BTreeMap`.
    FloatKeyedMap,
    /// `println!`/`eprintln!`-family in non-test library code.
    PrintInLib,
    /// A panic site is reachable from a `pub` fn via the call graph.
    PanicReachability,
    /// RNG constructed from entropy / ambient state instead of a seed.
    RngDiscipline,
    /// Lossy f64 accumulation / casts on sim-time values.
    SimTimeHygiene,
    /// A `simlint: allow` directive that is unusable (no reason / unknown lint).
    MalformedAllow,
    /// A well-formed allow directive that suppresses zero findings.
    StaleAllow,
}

/// The policy-selectable lints. The two meta lints (`malformed-allow`,
/// `stale-allow`) audit the allowlist itself and always run.
pub const ALL_LINTS: [Lint; 8] = [
    Lint::Nondeterminism,
    Lint::NanUnsafeCmp,
    Lint::PanicInLib,
    Lint::FloatKeyedMap,
    Lint::PrintInLib,
    Lint::PanicReachability,
    Lint::RngDiscipline,
    Lint::SimTimeHygiene,
];

impl Lint {
    pub fn name(self) -> &'static str {
        match self {
            Lint::Nondeterminism => "nondeterminism",
            Lint::NanUnsafeCmp => "nan-unsafe-cmp",
            Lint::PanicInLib => "panic-in-lib",
            Lint::FloatKeyedMap => "float-keyed-map",
            Lint::PrintInLib => "print-in-lib",
            Lint::PanicReachability => "panic-reachability",
            Lint::RngDiscipline => "rng-discipline",
            Lint::SimTimeHygiene => "sim-time-hygiene",
            Lint::MalformedAllow => "malformed-allow",
            Lint::StaleAllow => "stale-allow",
        }
    }

    pub fn from_name(name: &str) -> Option<Lint> {
        match name {
            "nondeterminism" => Some(Lint::Nondeterminism),
            "nan-unsafe-cmp" => Some(Lint::NanUnsafeCmp),
            "panic-in-lib" => Some(Lint::PanicInLib),
            "float-keyed-map" => Some(Lint::FloatKeyedMap),
            "print-in-lib" => Some(Lint::PrintInLib),
            "panic-reachability" => Some(Lint::PanicReachability),
            "rng-discipline" => Some(Lint::RngDiscipline),
            "sim-time-hygiene" => Some(Lint::SimTimeHygiene),
            "malformed-allow" => Some(Lint::MalformedAllow),
            "stale-allow" => Some(Lint::StaleAllow),
            _ => None,
        }
    }

    pub fn hint(self) -> &'static str {
        match self {
            Lint::Nondeterminism => {
                "simulated time and seeded rngs only: use SimTime, a seeded ChaCha8Rng, \
                 and BTreeMap/BTreeSet (or an explicit sort) for deterministic iteration"
            }
            Lint::NanUnsafeCmp => "use f64::total_cmp, which is total over NaN",
            Lint::PanicInLib => {
                "return a typed error (SimError/GridError) instead, or justify with \
                 `// simlint: allow(panic-in-lib): <reason>`"
            }
            Lint::FloatKeyedMap => {
                "float keys break Ord/Hash contracts under NaN; key by an integer id \
                 or by to_bits()"
            }
            Lint::PrintInLib => {
                "library output must flow through an EventSink, a returned value, or a \
                 caller-supplied writer — stdout/stderr from a library can't be \
                 captured, redirected or diffed; justify with \
                 `// simlint: allow(print-in-lib): <reason>`"
            }
            Lint::PanicReachability => {
                "a panicking callee aborts every public entry point above it; return a \
                 typed error along the chain, or justify the panic site itself with \
                 `// simlint: allow(panic-in-lib): <reason>` (reachability trusts \
                 reasoned sites)"
            }
            Lint::RngDiscipline => {
                "construct RNGs as `ChaCha8Rng::seed_from_u64(seed)` from an explicit \
                 seed parameter or constant; entropy-based construction breaks seeded \
                 replay, and a second stream next to a caller-supplied `&mut impl Rng` \
                 silently forks the sequence"
            }
            Lint::SimTimeHygiene => {
                "keep simulated time in integer microseconds (SimTime); accumulate \
                 SimTime and convert to f64 seconds once at the reporting boundary \
                 instead of summing `as_secs_f64()` values or round-tripping through \
                 casts"
            }
            Lint::MalformedAllow => {
                "write `// simlint: allow(<lint>): <reason>` with a known lint name \
                 and a non-empty reason"
            }
            Lint::StaleAllow => {
                "this directive suppresses zero findings; delete it so the allowlist \
                 stays exactly the intentional set"
            }
        }
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    pub line: usize,
    pub col: usize,
    /// Width of the offending token, for caret rendering.
    pub width: usize,
    /// The source line the finding sits on, trimmed of trailing space.
    pub snippet: String,
    pub message: String,
    /// True when covered by a well-formed allow directive.
    pub allowed: bool,
    pub allow_reason: Option<String>,
    /// rustc-style `note:` lines (panic-reachability renders its call
    /// path here).
    pub notes: Vec<String>,
}

/// A parsed `// simlint: allow(<lint>): <reason>` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    pub line: usize,
    pub lint: Option<Lint>,
    pub raw_name: String,
    pub reason: Option<String>,
    /// Set once the directive has suppressed at least one finding (or
    /// sanctioned a panic site for reachability); audited by
    /// `stale-allow`.
    pub used: bool,
}

/// Run `enabled` lints over one scanned file.
///
/// This is the single-file entry point: per-file passes plus allow
/// matching and `malformed-allow`. The workspace pipeline
/// ([`crate::analyze_sources`]) runs the same per-file passes but owns
/// the directives across passes so the cross-file lints and the
/// `stale-allow` audit see them too.
pub fn check_file(rel: &str, scanned: &ScannedFile, enabled: &[Lint]) -> Vec<Finding> {
    let mut findings = run_per_file_lints(rel, scanned, enabled);
    let mut directives = parse_allows(&scanned.comments);
    apply_allows(rel, scanned, &mut directives, &mut findings);
    directive_findings(rel, scanned, &directives, false, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

/// Run the per-file (single-pass) lints; cross-file lints
/// (`panic-reachability`) are skipped here — they need the workspace
/// index.
pub fn run_per_file_lints(rel: &str, scanned: &ScannedFile, enabled: &[Lint]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &scanned.tokens;

    for lint in enabled {
        match lint {
            Lint::NanUnsafeCmp => check_nan_unsafe_cmp(rel, scanned, toks, &mut findings),
            Lint::PanicInLib => check_panic_in_lib(rel, scanned, toks, &mut findings),
            Lint::Nondeterminism => check_nondeterminism(rel, scanned, toks, &mut findings),
            Lint::FloatKeyedMap => check_float_keyed_map(rel, scanned, toks, &mut findings),
            Lint::PrintInLib => check_print_in_lib(rel, scanned, toks, &mut findings),
            Lint::RngDiscipline => crate::passes::check_rng_discipline(rel, scanned, &mut findings),
            Lint::SimTimeHygiene => {
                crate::passes::check_sim_time_hygiene(rel, scanned, &mut findings)
            }
            Lint::PanicReachability | Lint::MalformedAllow | Lint::StaleAllow => {}
        }
    }

    findings
}

pub(crate) fn snippet_at(scanned: &ScannedFile, line: usize) -> String {
    scanned
        .lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim_end().to_owned())
        .unwrap_or_default()
}

pub(crate) fn finding(
    lint: Lint,
    rel: &str,
    scanned: &ScannedFile,
    tok: &Token,
    message: String,
) -> Finding {
    Finding {
        lint,
        file: rel.to_owned(),
        line: tok.line,
        col: tok.col,
        width: tok.text.chars().count().max(1),
        snippet: snippet_at(scanned, tok.line),
        message,
        allowed: false,
        allow_reason: None,
        notes: Vec::new(),
    }
}

/// Skip a balanced `(..)` group starting at `toks[i]` (which must be
/// `(`); returns the index just past the matching `)`.
pub(crate) fn skip_parens(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn check_nan_unsafe_cmp(rel: &str, scanned: &ScannedFile, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "partial_cmp" {
            continue;
        }
        // `fn partial_cmp(...)` is a PartialOrd impl, not a call site.
        if i > 0 && toks[i - 1].text == "fn" {
            continue;
        }
        // Must be a call: `partial_cmp(`.
        let Some(open) = toks.get(i + 1) else {
            continue;
        };
        if open.text != "(" {
            continue;
        }
        let after = skip_parens(toks, i + 1);
        let Some(dot) = toks.get(after) else { continue };
        if dot.text != "." {
            continue;
        }
        let Some(method) = toks.get(after + 1) else {
            continue;
        };
        if matches!(
            method.text.as_str(),
            "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else"
        ) {
            out.push(finding(
                Lint::NanUnsafeCmp,
                rel,
                scanned,
                &toks[i],
                format!(
                    "`partial_cmp(..).{}(..)` panics or mis-sorts on NaN",
                    method.text
                ),
            ));
        }
    }
}

/// Enumerate panic sites in non-test tokens: (token index, short
/// description). Shared by `panic-in-lib` (per-site diagnostics) and
/// the workspace index (hazards for `panic-reachability`).
pub(crate) fn panic_sites(toks: &[Token]) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let prev_is_dot = i > 0 && toks[i - 1].text == ".";
                let next_is_call = toks.get(i + 1).is_some_and(|n| n.text == "(");
                if prev_is_dot && next_is_call {
                    sites.push((i, format!(".{}()", t.text)));
                }
            }
            // `core::panic::...` paths and `#[should_panic]` don't have
            // a trailing `!`, so this stays call-site-only.
            // `debug_assert*` is deliberately exempt: it compiles out of
            // release simulations.
            "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
            | "assert_ne" => {
                let next_is_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                if next_is_bang {
                    sites.push((i, format!("{}!", t.text)));
                }
            }
            _ => {}
        }
    }
    sites
}

fn check_panic_in_lib(rel: &str, scanned: &ScannedFile, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, desc) in panic_sites(toks) {
        let t = &toks[i];
        let message = match t.text.as_str() {
            "unwrap" | "expect" => format!(
                "`.{}()` in library code can abort a simulation mid-run",
                t.text
            ),
            "assert" | "assert_eq" | "assert_ne" => format!(
                "`{desc}` in library code panics on bad input instead of \
                 returning an error"
            ),
            _ => format!("`{desc}` in library code aborts a simulation mid-run"),
        };
        out.push(finding(Lint::PanicInLib, rel, scanned, t, message));
    }
}

fn check_print_in_lib(rel: &str, scanned: &ScannedFile, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        if let "println" | "eprintln" | "print" | "eprint" = t.text.as_str() {
            let next_is_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
            if next_is_bang {
                out.push(finding(
                    Lint::PrintInLib,
                    rel,
                    scanned,
                    t,
                    format!(
                        "`{}!` in library code writes to a stream the caller \
                         cannot capture or redirect",
                        t.text
                    ),
                ));
            }
        }
    }
}

fn check_nondeterminism(rel: &str, scanned: &ScannedFile, toks: &[Token], out: &mut Vec<Finding>) {
    let path_is = |i: usize, head: &str, tail: &str| -> bool {
        toks[i].text == head
            && toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks.get(i + 3).is_some_and(|t| t.text == tail)
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.in_test {
            continue;
        }
        match t.text.as_str() {
            "SystemTime" if path_is(i, "SystemTime", "now") => {
                out.push(finding(
                    Lint::Nondeterminism,
                    rel,
                    scanned,
                    t,
                    "`SystemTime::now()` injects wall-clock time into simulated code".into(),
                ));
            }
            "Instant" if path_is(i, "Instant", "now") => {
                out.push(finding(
                    Lint::Nondeterminism,
                    rel,
                    scanned,
                    t,
                    "`Instant::now()` injects wall-clock time into simulated code".into(),
                ));
            }
            "thread_rng" => {
                out.push(finding(
                    Lint::Nondeterminism,
                    rel,
                    scanned,
                    t,
                    "`thread_rng()` draws OS entropy and breaks seeded replay".into(),
                ));
            }
            "HashMap" | "HashSet" => {
                out.push(finding(
                    Lint::Nondeterminism,
                    rel,
                    scanned,
                    t,
                    format!(
                        "`{}` iteration order is randomized per-process and can leak \
                         into results",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn check_float_keyed_map(rel: &str, scanned: &ScannedFile, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if !matches!(
            t.text.as_str(),
            "HashMap" | "BTreeMap" | "HashSet" | "BTreeSet"
        ) {
            continue;
        }
        let lt = toks.get(i + 1).is_some_and(|n| n.text == "<");
        let key_is_float = toks
            .get(i + 2)
            .is_some_and(|n| matches!(n.text.as_str(), "f64" | "f32"));
        if lt && key_is_float {
            out.push(finding(
                Lint::FloatKeyedMap,
                rel,
                scanned,
                t,
                format!("`{}` keyed by a float type", t.text),
            ));
        }
    }
}

/// Parse every `// simlint: allow(..)` directive in a file's comments.
pub fn parse_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        // A directive must be the whole comment: `// simlint: allow(..): ..`.
        // Mentions of the syntax mid-prose (docs, hints) are not directives.
        let head = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = head.strip_prefix("simlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            out.push(AllowDirective {
                line: c.line,
                lint: None,
                raw_name: rest.split_whitespace().next().unwrap_or("").to_owned(),
                reason: None,
                used: false,
            });
            continue;
        };
        let Some(close) = body.find(')') else {
            out.push(AllowDirective {
                line: c.line,
                lint: None,
                raw_name: body.to_owned(),
                reason: None,
                used: false,
            });
            continue;
        };
        let name = body[..close].trim().to_owned();
        let after = body[close + 1..].trim_start();
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty());
        // The meta lints audit the allowlist itself and cannot be
        // allowed away; treat directives naming them as unknown.
        let lint = Lint::from_name(&name)
            .filter(|l| !matches!(l, Lint::MalformedAllow | Lint::StaleAllow));
        out.push(AllowDirective {
            line: c.line,
            lint,
            raw_name: name,
            reason,
            used: false,
        });
    }
    out
}

/// The next line at or after `after + 1` that holds any code token.
pub(crate) fn next_code_line(scanned: &ScannedFile, after: usize) -> Option<usize> {
    scanned
        .tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > after)
        .min()
}

/// Match findings against allow directives, marking each directive
/// `used` when it suppresses something.
///
/// A directive on line `L` covers findings on `L` itself (trailing
/// comment) and on the next line that holds any code (standalone comment
/// above the offending expression).
pub fn apply_allows(
    rel: &str,
    scanned: &ScannedFile,
    directives: &mut [AllowDirective],
    findings: &mut [Finding],
) {
    for d in directives.iter_mut() {
        let (Some(lint), Some(reason)) = (&d.lint, &d.reason) else {
            continue;
        };
        let covered_next = next_code_line(scanned, d.line);
        for f in findings.iter_mut() {
            if f.file == rel
                && f.lint == *lint
                && (f.line == d.line || Some(f.line) == covered_next)
                && !f.allowed
            {
                f.allowed = true;
                f.allow_reason = Some(reason.clone());
                d.used = true;
            }
        }
    }
}

/// Emit the meta findings for a file's directives: `malformed-allow`
/// for unusable ones and (when `audit_stale` is set — the workspace
/// pipeline, after every pass has run) `stale-allow` for well-formed
/// directives that suppressed nothing.
pub fn directive_findings(
    rel: &str,
    scanned: &ScannedFile,
    directives: &[AllowDirective],
    audit_stale: bool,
    out: &mut Vec<Finding>,
) {
    for d in directives {
        let meta = |lint: Lint, message: String| Finding {
            lint,
            file: rel.to_owned(),
            line: d.line,
            col: 1,
            width: 1,
            snippet: snippet_at(scanned, d.line),
            message,
            allowed: false,
            allow_reason: None,
            notes: Vec::new(),
        };
        match (&d.lint, &d.reason) {
            (Some(_), Some(_)) => {
                if audit_stale && !d.used {
                    out.push(meta(
                        Lint::StaleAllow,
                        format!("allow({}) suppresses zero findings", d.raw_name),
                    ));
                }
            }
            (Some(_), None) => {
                out.push(meta(
                    Lint::MalformedAllow,
                    format!("allow({}) is missing its mandatory reason", d.raw_name),
                ));
            }
            (None, _) => {
                out.push(meta(
                    Lint::MalformedAllow,
                    format!("allow({}) names an unknown lint", d.raw_name),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn run(src: &str, lints: &[Lint]) -> Vec<Finding> {
        let scanned = scan(src, false);
        check_file("fixture.rs", &scanned, lints)
    }

    fn unallowed(findings: &[Finding]) -> usize {
        findings.iter().filter(|f| !f.allowed).count()
    }

    // --- nan-unsafe-cmp ---

    #[test]
    fn nan_unsafe_cmp_flags_unwrap_expect_and_unwrap_or() {
        let src = "
fn f() {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v.sort_by(|a, b| a.partial_cmp(b).expect(\"NaN\"));
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
";
        let f = run(src, &[Lint::NanUnsafeCmp]);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.lint == Lint::NanUnsafeCmp));
    }

    #[test]
    fn nan_unsafe_cmp_ignores_safe_uses() {
        let src = "
impl PartialOrd for T {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }
}
fn g() {
    v.sort_by(|a, b| a.total_cmp(b));
    // NaN-safe: treats None (NaN) explicitly
    if x.partial_cmp(&0.0) != Some(Ordering::Greater) { }
    let o = a.partial_cmp(&b).map(|o| o.reverse());
}
";
        assert!(run(src, &[Lint::NanUnsafeCmp]).is_empty());
    }

    #[test]
    fn nan_unsafe_cmp_spans_multiline_chains() {
        let src = "
fn f() {
    v.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap()
    });
}
";
        assert_eq!(run(src, &[Lint::NanUnsafeCmp]).len(), 1);
    }

    #[test]
    fn nan_unsafe_cmp_applies_in_test_code_too() {
        let src = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() { items.min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()); }
}
";
        assert_eq!(run(src, &[Lint::NanUnsafeCmp]).len(), 1);
    }

    // --- panic-in-lib ---

    #[test]
    fn panic_in_lib_flags_unwrap_expect_and_macros() {
        let src = "
fn f() {
    let a = x.unwrap();
    let b = y.expect(\"msg\");
    panic!(\"boom\");
    unreachable!();
    todo!();
}
";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn panic_in_lib_flags_assert_family_outside_tests() {
        let src = "
fn f(n: usize) {
    assert!(n > 0);
    assert_eq!(n % 2, 0);
    assert_ne!(n, 7);
    debug_assert!(n < 100); // compiled out in release: exempt
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(1 + 1, 2); }
}
";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("panics on bad input")));
    }

    #[test]
    fn panic_in_lib_exempts_test_code_and_lookalikes() {
        let src = "
fn f() {
    let a = x.unwrap_or(0);
    let b = y.unwrap_or_else(|| 1);
    let c = z.unwrap_or_default();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { q.unwrap(); panic!(\"fine in tests\"); }
}
";
        assert!(run(src, &[Lint::PanicInLib]).is_empty());
    }

    // --- print-in-lib ---

    #[test]
    fn print_in_lib_flags_the_println_family() {
        let src = "
fn f() {
    println!(\"progress: {pct}%\");
    eprintln!(\"warning: {w}\");
    print!(\"partial\");
    eprint!(\"partial err\");
}
";
        let f = run(src, &[Lint::PrintInLib]);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|x| x.lint == Lint::PrintInLib));
    }

    #[test]
    fn print_in_lib_exempts_tests_and_lookalikes() {
        let src = "
fn f(w: &mut impl std::fmt::Write) {
    writeln!(w, \"captured output\").ok();
    let println = 3; // an ident without `!` is not a macro call
    log.println;
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!(\"fine in tests\"); }
}
";
        assert!(run(src, &[Lint::PrintInLib]).is_empty());
    }

    #[test]
    fn print_in_lib_respects_allow_with_reason() {
        let src = "fn f() { println!(\"x\"); } // simlint: allow(print-in-lib): CLI-facing table renderer\n";
        let f = run(src, &[Lint::PrintInLib]);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
    }

    // --- nondeterminism ---

    #[test]
    fn nondeterminism_flags_clock_entropy_and_hash_iteration() {
        let src = "
fn f() {
    let t = std::time::SystemTime::now();
    let i = Instant::now();
    let mut rng = rand::thread_rng();
    let m: HashMap<u32, u32> = HashMap::new();
}
";
        let f = run(src, &[Lint::Nondeterminism]);
        // SystemTime, Instant, thread_rng, HashMap (type + ctor)
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn nondeterminism_ignores_seeded_and_test_code() {
        let src = "
fn f() {
    let rng = ChaCha8Rng::seed_from_u64(seed);
    let m: BTreeMap<u32, u32> = BTreeMap::new();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let started = Instant::now(); }
}
";
        assert!(run(src, &[Lint::Nondeterminism]).is_empty());
    }

    // --- float-keyed-map ---

    #[test]
    fn float_keyed_map_flags_f64_keys() {
        let src = "fn f() { let m: BTreeMap<f64, u32> = BTreeMap::new(); let s: HashSet<f32> = HashSet::new(); }";
        let f = run(src, &[Lint::FloatKeyedMap]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn float_keyed_map_ignores_integer_keys_and_float_values() {
        let src = "fn f() { let m: BTreeMap<u64, f64> = BTreeMap::new(); }";
        assert!(run(src, &[Lint::FloatKeyedMap]).is_empty());
    }

    // --- allow directives ---

    #[test]
    fn allow_with_reason_suppresses_same_line() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(panic-in-lib): poisoned lock is unrecoverable\n";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
        assert_eq!(unallowed(&f), 0);
        assert!(f[0].allow_reason.as_deref().unwrap().contains("poisoned"));
    }

    #[test]
    fn allow_with_reason_suppresses_next_code_line() {
        let src = "
// simlint: allow(panic-in-lib): invariant: queue is non-empty after push
fn f() { x.unwrap(); }
";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(unallowed(&f), 0);
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(panic-in-lib)\n";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(unallowed(&f), 2, "original finding + malformed-allow");
        assert!(f.iter().any(|x| x.lint == Lint::MalformedAllow));
    }

    #[test]
    fn allow_with_unknown_lint_is_malformed() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(no-such-lint): because\n";
        let f = run(src, &[Lint::PanicInLib]);
        assert!(f.iter().any(|x| x.lint == Lint::MalformedAllow));
        assert_eq!(unallowed(&f), 2);
    }

    #[test]
    fn prose_mention_of_directive_syntax_is_not_a_directive() {
        let src = "
//! Docs: suppress with a `// simlint: allow(panic-in-lib): reason` comment.
fn f() {}
";
        assert!(run(src, &[Lint::PanicInLib]).is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_other_lints_or_lines() {
        let src = "
// simlint: allow(panic-in-lib): justified here
fn f() { x.unwrap(); }
fn g() { y.unwrap(); }
";
        let f = run(src, &[Lint::PanicInLib]);
        assert_eq!(unallowed(&f), 1);
    }
}
