//! The one lint driver shared by the standalone `simlint` binary and
//! `apples-cli lint`: flag parsing, workspace scan, rendering, exit
//! code.

use std::path::Path;

use crate::{Lint, Report};

/// Output format for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
    Github,
}

pub const USAGE: &str = "usage: simlint [--format text|json|github] [--deny <lint>] [PATH ...]";

/// Parse args and run the lint driver. Returns the process exit code:
/// 0 when clean (every finding allowed and no denied lints hit), 1 when
/// any unallowed finding remains or a `--deny`-ed lint fired (allowed
/// or not), 2 on usage or I/O errors. Output goes to stdout, errors to
/// stderr.
pub fn run<I: Iterator<Item = String>>(mut args: I) -> u8 {
    let mut format = Format::Text;
    let mut deny: Vec<Lint> = Vec::new();
    let mut roots: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "simlint: --format expects `text`, `json` or `github`, got {:?}",
                        other.unwrap_or("<missing>")
                    );
                    return 2;
                }
            },
            "--deny" => match args.next().as_deref().and_then(Lint::from_name) {
                Some(lint) => deny.push(lint),
                None => {
                    eprintln!("simlint: --deny expects a known lint name");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                println!();
                println!("Lints (see DESIGN.md for the policy table):");
                for lint in crate::ALL_LINTS {
                    println!("  {:<20} {}", lint.name(), lint.hint());
                }
                println!(
                    "  {:<20} {}",
                    Lint::MalformedAllow.name(),
                    Lint::MalformedAllow.hint()
                );
                println!(
                    "  {:<20} {}",
                    Lint::StaleAllow.name(),
                    Lint::StaleAllow.hint()
                );
                println!();
                println!("--deny <lint>: exit 1 if <lint> fired at all, even allowed.");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("simlint: unknown flag {flag}");
                eprintln!("{USAGE}");
                return 2;
            }
            path => roots.push(path.to_owned()),
        }
    }
    if roots.is_empty() {
        roots.push(".".to_owned());
    }

    let mut report = Report::default();
    for root in &roots {
        match crate::lint_workspace(Path::new(root)) {
            Ok(r) => {
                report.findings.extend(r.findings);
                report.files_scanned += r.files_scanned;
            }
            Err(e) => {
                eprintln!("simlint: failed to scan {root}: {e}");
                return 2;
            }
        }
    }

    match format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
        Format::Github => print!("{}", report.render_github()),
    }

    let denied = report
        .findings
        .iter()
        .filter(|f| deny.contains(&f.lint))
        .count();
    if denied > 0 {
        eprintln!("simlint: {denied} finding(s) of denied lint(s)");
    }
    if report.unallowed_count() > 0 || denied > 0 {
        1
    } else {
        0
    }
}
