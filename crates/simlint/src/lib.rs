//! simlint — the workspace's static-analysis pass.
//!
//! The apples suite promises *seeded, bit-identical replay*: every
//! schedule, fault trace and benchmark must reproduce from a `--seed`
//! alone. That promise is easy to break silently — one `Instant::now()`
//! in a cost model, one `HashMap` iteration feeding a tie-break, one
//! `partial_cmp().unwrap()` meeting a NaN — so simlint checks the
//! invariants statically, before anything runs:
//!
//! * `nondeterminism` — no wall-clock, OS entropy, or hash-order
//!   iteration in the simulation crates (`simcore`, `metasim`, `core`,
//!   `nws`, `grid`, `obsv`).
//! * `nan-unsafe-cmp` — comparator chains must use `total_cmp`, never
//!   `partial_cmp(..).unwrap()/expect()/unwrap_or(..)`.
//! * `panic-in-lib` — library code in the simulation crates returns
//!   typed errors instead of `unwrap()`/`expect()`/`panic!` or the
//!   `assert!`/`assert_eq!`/`assert_ne!` family (`debug_assert*` is
//!   exempt: it compiles out of release simulations).
//! * `float-keyed-map` — no `f64`/`f32`-keyed maps or sets.
//! * `print-in-lib` — library code in the simulation crates never
//!   writes to stdout/stderr directly; output flows through an
//!   `EventSink`, a returned value, or a caller-supplied writer.
//!
//! Suppression requires a reason:
//! `// simlint: allow(<lint>): <why this site is sound>`.
//! Reason-less or unknown-lint directives are themselves findings
//! (`malformed-allow`) and never suppress anything.
//!
//! No dependencies: the scanner is a hand-rolled tokenizer
//! ([`scanner`]), and the JSON output is rendered by hand.

pub mod driver;
pub mod index;
pub mod itemtree;
pub mod lints;
pub mod passes;
pub mod scanner;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{Finding, Lint, ALL_LINTS};

/// Crates whose library code must be deterministic and panic-free.
pub const SIM_CRATES: [&str; 6] = ["simcore", "metasim", "core", "nws", "grid", "obsv"];

/// Directories never scanned (vendored shims, build output, VCS).
const SKIP_DIRS: [&str; 5] = ["vendor", "target", ".git", ".github", "node_modules"];

/// Which lints apply to a workspace-relative path, per the policy table
/// in DESIGN.md:
///
/// * simulation crates (`crates/{simcore,metasim,core,nws,grid,obsv}`):
///   all lints;
/// * everything else (apps, cli, bench, simlint itself, the umbrella
///   `src/` and `tests/`): `nan-unsafe-cmp` + `float-keyed-map` only —
///   binaries may panic on bad input and read the wall clock, but
///   NaN-poisoned ordering is wrong everywhere;
/// * `vendor/` and `target/`: nothing.
///
/// Test code is additionally exempt from `nondeterminism` and
/// `panic-in-lib` via the scanner's `in_test` marking; `nan-unsafe-cmp`
/// and `float-keyed-map` apply even in tests.
pub fn lints_for_path(rel: &Path) -> Vec<Lint> {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.first().is_some_and(|c| SKIP_DIRS.contains(c)) {
        return Vec::new();
    }
    let in_sim_crate =
        comps.first() == Some(&"crates") && comps.get(1).is_some_and(|c| SIM_CRATES.contains(c));
    if in_sim_crate {
        ALL_LINTS.to_vec()
    } else {
        vec![Lint::NanUnsafeCmp, Lint::FloatKeyedMap]
    }
}

/// Whole-file test code: integration tests, benches, examples.
pub fn is_test_path(rel: &Path) -> bool {
    rel.components()
        .filter_map(|c| c.as_os_str().to_str())
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Lint a single source file (the policy is derived from `rel`).
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let path = Path::new(rel);
    let enabled = lints_for_path(path);
    if enabled.is_empty() {
        return Vec::new();
    }
    let scanned = scanner::scan(source, is_test_path(path));
    lints::check_file(rel, &scanned, &enabled)
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unallowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed)
    }

    pub fn unallowed_count(&self) -> usize {
        self.unallowed().count()
    }

    pub fn allowed_count(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed).count()
    }

    /// rustc-style text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.unallowed() {
            let level = "error";
            let _ = writeln!(out, "{level}[{}]: {}", f.lint.name(), f.message);
            let _ = writeln!(out, "  --> {}:{}:{}", f.file, f.line, f.col);
            let gutter = f.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {}", f.snippet);
            let caret_pad = " ".repeat(f.col.saturating_sub(1));
            let carets = "^".repeat(f.width);
            let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
            for n in &f.notes {
                let _ = writeln!(out, "{pad} = note: {n}");
            }
            let _ = writeln!(out, "{pad} = help: {}", f.lint.hint());
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "simlint: {} file(s) scanned, {} finding(s) ({} allowed, {} unallowed)",
            self.files_scanned,
            self.findings.len(),
            self.allowed_count(),
            self.unallowed_count()
        );
        out
    }

    /// Machine-readable JSON rendering (hand-built; no serde in-tree).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"unallowed\": {},", self.unallowed_count());
        let _ = writeln!(out, "  \"allowed\": {},", self.allowed_count());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"lint\": \"{}\", ", f.lint.name());
            let _ = write!(out, "\"file\": {}, ", json_str(&f.file));
            let _ = write!(out, "\"line\": {}, \"col\": {}, ", f.line, f.col);
            let _ = write!(out, "\"message\": {}, ", json_str(&f.message));
            let _ = write!(out, "\"snippet\": {}, ", json_str(&f.snippet));
            if !f.notes.is_empty() {
                out.push_str("\"notes\": [");
                for (j, n) in f.notes.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(n));
                }
                out.push_str("], ");
            }
            let _ = write!(out, "\"allowed\": {}", f.allowed);
            if let Some(r) = &f.allow_reason {
                let _ = write!(out, ", \"reason\": {}", json_str(r));
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// GitHub Actions workflow-command rendering: one `::error` line
    /// per unallowed finding, so findings annotate PR diffs inline.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for f in self.unallowed() {
            let mut message = f.message.clone();
            for n in &f.notes {
                message.push('\n');
                message.push_str("note: ");
                message.push_str(n);
            }
            let _ = writeln!(
                out,
                "::error file={},line={},col={},title=simlint({})::{}",
                gh_escape(&f.file),
                f.line,
                f.col,
                f.lint.name(),
                gh_escape(&message)
            );
        }
        out
    }
}

/// Escape a value for a GitHub Actions workflow command (`%`, CR and LF
/// are the command's meta-characters).
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collect `.rs` files under `root`, skipping [`SKIP_DIRS`]
/// and hidden directories. Paths come back sorted for deterministic
/// reports. A `root` that is itself a file is returned as-is.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Run the full multi-pass analysis over a set of in-memory sources
/// (`(workspace-relative path, source)` pairs).
///
/// Pipeline: per-file lints → workspace symbol index / call graph →
/// cross-file passes (`panic-reachability`) → allow matching (which
/// marks directives used) → allowlist audit (`malformed-allow`,
/// `stale-allow`) → deterministic sort. `lint_workspace` is this plus
/// filesystem walking; fixture tests call it directly with synthetic
/// workspaces.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let mut report = Report::default();
    let mut ctxs: Vec<index::FileCtx> = Vec::new();
    for (rel, source) in sources {
        let path = Path::new(rel);
        let enabled = lints_for_path(path);
        if enabled.is_empty() {
            continue;
        }
        let scanned = scanner::scan(source, is_test_path(path));
        let directives = lints::parse_allows(&scanned.comments);
        ctxs.push(index::FileCtx {
            rel: rel.clone(),
            scanned,
            enabled,
            directives,
        });
        report.files_scanned += 1;
    }

    let mut findings = Vec::new();
    for ctx in &ctxs {
        findings.extend(lints::run_per_file_lints(
            &ctx.rel,
            &ctx.scanned,
            &ctx.enabled,
        ));
    }

    let idx = index::Index::build(&mut ctxs);
    passes::panic_reachability(&idx, &ctxs, &mut findings);

    for ctx in ctxs.iter_mut() {
        lints::apply_allows(&ctx.rel, &ctx.scanned, &mut ctx.directives, &mut findings);
    }
    for ctx in &ctxs {
        lints::directive_findings(&ctx.rel, &ctx.scanned, &ctx.directives, true, &mut findings);
    }

    report.findings = findings;
    sort_findings(&mut report.findings);
    report
}

/// The canonical report order: path, then line:col, then lint name,
/// then message — total, so `render_json` is byte-stable across
/// filesystems and hash seeds.
fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line,
            a.col,
            a.lint.name(),
            a.message.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line,
                b.col,
                b.lint.name(),
                b.message.as_str(),
            ))
    });
}

/// Lint every `.rs` file under `root` (a workspace checkout).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut sources = Vec::new();
    for path in collect_rs_files(root)? {
        // For a single-file root the stripped prefix is empty; fall back
        // to the full path so the crate policy still applies.
        let rel = path
            .strip_prefix(root)
            .ok()
            .filter(|r| !r.as_os_str().is_empty())
            .unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if lints_for_path(Path::new(&rel_str)).is_empty() {
            continue;
        }
        sources.push((rel_str, fs::read_to_string(&path)?));
    }
    Ok(analyze_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_gives_sim_crates_every_lint() {
        let l = lints_for_path(Path::new("crates/metasim/src/net.rs"));
        assert_eq!(l.len(), 8);
        let l = lints_for_path(Path::new("crates/grid/src/service.rs"));
        assert!(l.contains(&Lint::PanicInLib));
        assert!(l.contains(&Lint::PanicReachability));
        assert!(l.contains(&Lint::RngDiscipline));
        assert!(l.contains(&Lint::SimTimeHygiene));
        let l = lints_for_path(Path::new("crates/obsv/src/registry.rs"));
        assert!(l.contains(&Lint::PrintInLib));
    }

    #[test]
    fn policy_gives_binaries_only_nan_and_float_lints() {
        let l = lints_for_path(Path::new("crates/cli/src/main.rs"));
        assert_eq!(l, vec![Lint::NanUnsafeCmp, Lint::FloatKeyedMap]);
        let l = lints_for_path(Path::new("crates/apps/src/nile.rs"));
        assert_eq!(l, vec![Lint::NanUnsafeCmp, Lint::FloatKeyedMap]);
    }

    #[test]
    fn policy_skips_vendor_and_target() {
        assert!(lints_for_path(Path::new("vendor/rand/src/lib.rs")).is_empty());
        assert!(lints_for_path(Path::new("target/debug/build/x.rs")).is_empty());
    }

    #[test]
    fn integration_test_paths_are_test_code() {
        assert!(is_test_path(Path::new("tests/grid_stream.rs")));
        assert!(is_test_path(Path::new("crates/metasim/tests/replay.rs")));
        assert!(is_test_path(Path::new("crates/bench/benches/grid.rs")));
        assert!(!is_test_path(Path::new("crates/metasim/src/net.rs")));
    }

    #[test]
    fn lint_source_honours_policy() {
        let src = "fn f() { x.unwrap(); }\n";
        // Panics allowed in the cli crate...
        assert!(lint_source("crates/cli/src/commands.rs", src).is_empty());
        // ...but not in metasim library code.
        assert_eq!(lint_source("crates/metasim/src/host.rs", src).len(), 1);
        // ...and metasim's integration tests are exempt again.
        assert!(lint_source("crates/metasim/tests/faults.rs", src).is_empty());
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let s = json_str("say \"hi\"\\\n");
        assert_eq!(s, "\"say \\\"hi\\\"\\\\\\n\"");
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let src = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        // cli policy: only nan-unsafe-cmp fires (the unwrap is exempt there).
        let findings = lint_source("crates/cli/src/x.rs", src);
        let report = Report {
            findings,
            files_scanned: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"lint\": \"nan-unsafe-cmp\""));
        assert!(json.contains("\"unallowed\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
