//! Item-tree / scope parser: the structural layer between the flat
//! token stream and the analysis passes.
//!
//! A single forward walk over the tokens recovers the item skeleton of
//! a file — `mod` / `fn` / `impl` / `trait` / `struct` / `enum`
//! boundaries with brace-matched token and byte spans, visibility, fn
//! parameter names and types, and `#[test]` / `#[cfg(test)]`
//! attribution. It is still not a full parser (no expressions, no
//! types beyond token runs), but it is enough scope structure for
//! simlint's cross-file passes: the symbol index hangs function
//! definitions off the tree, the rng-discipline dataflow resolves
//! identifiers against fn parameters, and test-scope tracking lives
//! here rather than in the lexer.
//!
//! Known imprecision, by design (documented in DESIGN.md): macro
//! bodies are skipped wholesale, `impl` type names collapse to the
//! last path segment, and generic bounds are recorded only as token
//! runs.

use crate::scanner::{TokKind, Token};

/// What kind of item a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Struct,
    Enum,
    Union,
    Trait,
    Impl,
    Macro,
}

/// One `fn` parameter: the pattern's identifier(s) and the type's
/// token texts.
#[derive(Debug, Clone, Default)]
pub struct Param {
    /// Identifiers bound by the pattern (`self`, `x`, or several for a
    /// tuple pattern).
    pub names: Vec<String>,
    /// The type as raw token texts (empty for bare `self`).
    pub ty: Vec<String>,
}

/// One item in the tree. Spans are token indices into the scanned
/// file's token vector; `body_end` points at the closing `}` (or the
/// terminating `;` for body-less items).
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name; for `impl` blocks the self-type's last path segment.
    pub name: String,
    pub is_pub: bool,
    /// Carries `#[test]` / `#[cfg(test)]` directly.
    pub has_test_attr: bool,
    /// Test by own attribute or by any ancestor's.
    pub is_test: bool,
    pub parent: Option<usize>,
    /// First token of the item (leading attributes / `pub` included).
    pub start: usize,
    /// Token index of the item keyword (`fn`, `mod`, ...).
    pub kw: usize,
    /// Token index of the opening `{`, when the item has a body.
    pub body_start: usize,
    /// Token index of the closing `}` / terminating `;` (inclusive).
    pub body_end: usize,
    pub has_body: bool,
    /// 1-based position of the name token (diagnostics anchor here).
    pub line: usize,
    pub col: usize,
    /// Byte span of the whole item, attributes included.
    pub byte_start: usize,
    pub byte_end: usize,
    /// Fn only: declared parameters, in order.
    pub params: Vec<Param>,
    /// Fn only: generic type parameters whose bounds mention an
    /// `Rng`-flavoured trait (`R: Rng`, `R: RngCore + ?Sized`, ...).
    pub rng_generics: Vec<String>,
}

/// The item structure of one file: a flat pre-order arena with parent
/// links.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub items: Vec<Item>,
    /// Set by a file-level `#![cfg(test)]` inner attribute.
    pub whole_file_test: bool,
}

impl ItemTree {
    /// Innermost `fn` item whose span contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, it) in self.items.iter().enumerate() {
            if it.kind == ItemKind::Fn && it.kw <= tok && tok <= it.body_end {
                // Pre-order: a later matching item is more deeply nested.
                best = Some(i);
            }
        }
        best
    }

    /// Indices of the direct children of `idx`.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        (0..self.items.len())
            .filter(|&i| self.items[i].parent == Some(idx))
            .collect()
    }

    /// All `fn` items, in source order.
    pub fn fns(&self) -> impl Iterator<Item = (usize, &Item)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.kind == ItemKind::Fn)
    }

    /// The `mod` / `impl` / `trait` name chain from the file root down
    /// to (excluding) item `idx`, e.g. `["net", "RouteCache"]`.
    pub fn scope_path(&self, idx: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = self.items[idx].parent;
        while let Some(p) = cur {
            let it = &self.items[p];
            if matches!(it.kind, ItemKind::Mod | ItemKind::Impl | ItemKind::Trait)
                && !it.name.is_empty()
            {
                chain.push(it.name.clone());
            }
            cur = it.parent;
        }
        chain.reverse();
        chain
    }
}

/// Mark `in_test` on every token covered by a test item (or the whole
/// file, for a `#![cfg(test)]` inner attribute).
pub fn mark_tests(tree: &ItemTree, tokens: &mut [Token]) {
    if tree.whole_file_test {
        for t in tokens.iter_mut() {
            t.in_test = true;
        }
        return;
    }
    for it in &tree.items {
        if it.is_test {
            for t in tokens
                .iter_mut()
                .take(it.body_end.saturating_add(1))
                .skip(it.start)
            {
                t.in_test = true;
            }
        }
    }
}

/// Pending per-item state gathered between items (attributes, `pub`).
#[derive(Default)]
struct Pending {
    start: Option<usize>,
    test_attr: bool,
    is_pub: bool,
}

impl Pending {
    fn note(&mut self, i: usize) {
        if self.start.is_none() {
            self.start = Some(i);
        }
    }

    fn take(&mut self, kw: usize) -> (usize, bool, bool) {
        let start = self.start.take().unwrap_or(kw);
        let (test, vis) = (self.test_attr, self.is_pub);
        self.test_attr = false;
        self.is_pub = false;
        (start, test, vis)
    }

    fn clear(&mut self) {
        self.start = None;
        self.test_attr = false;
        self.is_pub = false;
    }
}

/// Build the item tree for a token stream.
pub fn build(tokens: &[Token]) -> ItemTree {
    Builder {
        toks: tokens,
        tree: ItemTree::default(),
        stack: Vec::new(),
        depth: 0,
        pending: Pending::default(),
    }
    .run()
}

struct Builder<'a> {
    toks: &'a [Token],
    tree: ItemTree,
    /// Open container items: (item index, brace depth just after the
    /// body `{` was entered).
    stack: Vec<(usize, i64)>,
    depth: i64,
    pending: Pending,
}

impl<'a> Builder<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    fn run(mut self) -> ItemTree {
        let n = self.toks.len();
        let mut i = 0usize;
        while i < n {
            match self.text(i) {
                "#" => i = self.attr(i),
                "pub" => {
                    self.pending.note(i);
                    self.pending.is_pub = true;
                    i += 1;
                    // `pub(crate)`, `pub(in path)`.
                    if self.text(i) == "(" {
                        i = skip_group(self.toks, i, "(", ")");
                    }
                }
                "fn" => i = self.item_fn(i),
                "mod" => i = self.item_mod(i),
                "struct" | "enum" | "union" => i = self.item_adt(i),
                "trait" => i = self.item_trait(i),
                "impl" => i = self.item_impl(i),
                "macro_rules" => i = self.item_macro(i),
                "{" => {
                    self.depth += 1;
                    self.pending.clear();
                    i += 1;
                }
                "}" => {
                    self.depth -= 1;
                    if let Some(&(idx, open_depth)) = self.stack.last() {
                        if open_depth == self.depth + 1 {
                            self.tree.items[idx].body_end = i;
                            self.tree.items[idx].byte_end = self.toks[i].byte_end();
                            self.stack.pop();
                        }
                    }
                    self.pending.clear();
                    i += 1;
                }
                ";" => {
                    self.pending.clear();
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        // Unterminated items (truncated input): close at EOF.
        while let Some((idx, _)) = self.stack.pop() {
            self.tree.items[idx].body_end = n.saturating_sub(1);
            self.tree.items[idx].byte_end = self.toks.last().map(|t| t.byte_end()).unwrap_or(0);
        }
        // Resolve transitive test scope: parents precede children in
        // the pre-order arena, so one forward pass suffices.
        for i in 0..self.tree.items.len() {
            let inherited = self.tree.items[i]
                .parent
                .is_some_and(|p| self.tree.items[p].is_test);
            self.tree.items[i].is_test = self.tree.items[i].has_test_attr || inherited;
        }
        self.tree
    }

    /// Parse an attribute at `i` (`#[..]` / `#![..]`); records pending
    /// test state for outer attrs, container/file test state for inner
    /// ones. Returns the index just past the closing `]`.
    fn attr(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        let inner = self.text(j) == "!";
        if inner {
            j += 1;
        }
        if self.text(j) != "[" {
            return i + 1;
        }
        let mut depth = 0i64;
        let mut has_test = false;
        let mut has_not = false;
        while j < self.toks.len() {
            match self.text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
            j += 1;
        }
        let test = has_test && !has_not;
        if inner {
            if test {
                match self.stack.last() {
                    Some(&(idx, _)) => self.tree.items[idx].has_test_attr = true,
                    None => self.tree.whole_file_test = true,
                }
            }
        } else {
            self.pending.note(i);
            self.pending.test_attr |= test;
        }
        j
    }

    fn push_item(&mut self, mut item: Item) -> usize {
        item.parent = self.stack.last().map(|&(idx, _)| idx);
        let idx = self.tree.items.len();
        self.tree.items.push(item);
        idx
    }

    fn new_item(&mut self, kind: ItemKind, kw: usize, name_tok: usize) -> Item {
        let (start, test, is_pub) = self.pending.take(kw);
        let name_at = self.toks.get(name_tok).unwrap_or(&self.toks[kw]);
        Item {
            kind,
            name: if self.is_ident(name_tok) {
                self.text(name_tok).to_owned()
            } else {
                String::new()
            },
            is_pub,
            has_test_attr: test,
            is_test: false,
            parent: None,
            start,
            kw,
            body_start: kw,
            body_end: kw,
            has_body: false,
            line: name_at.line,
            col: name_at.col,
            byte_start: self.toks[start.min(kw)].byte,
            byte_end: name_at.byte_end(),
            params: Vec::new(),
            rng_generics: Vec::new(),
        }
    }

    /// Open `item`'s body at the `{` in position `open` and descend.
    fn open_body(&mut self, mut item: Item, open: usize) -> usize {
        item.has_body = true;
        item.body_start = open;
        item.body_end = open; // patched when the brace closes
        let idx = self.push_item(item);
        self.depth += 1;
        self.stack.push((idx, self.depth));
        open + 1
    }

    /// Close a body-less item at the terminator token `end`.
    fn close_at(&mut self, mut item: Item, end: usize) -> usize {
        let end = end.min(self.toks.len().saturating_sub(1));
        item.body_end = end;
        item.byte_end = self.toks[end].byte_end();
        self.push_item(item);
        end + 1
    }

    fn item_fn(&mut self, kw: usize) -> usize {
        let name_tok = kw + 1;
        let mut item = self.new_item(ItemKind::Fn, kw, name_tok);
        let mut j = name_tok + 1;
        if self.text(j) == "<" {
            let (end, rng_generics) = scan_generics(self.toks, j);
            item.rng_generics = rng_generics;
            j = end;
        }
        if self.text(j) == "(" {
            let (end, params) = scan_params(self.toks, j);
            item.params = params;
            j = end;
        }
        // Return type and where clause: scan to the body or terminator.
        while j < self.toks.len() && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) == "{" {
            self.open_body(item, j)
        } else {
            self.close_at(item, j)
        }
    }

    fn item_mod(&mut self, kw: usize) -> usize {
        let name_tok = kw + 1;
        let item = self.new_item(ItemKind::Mod, kw, name_tok);
        let j = name_tok + 1;
        if self.text(j) == "{" {
            self.open_body(item, j)
        } else {
            self.close_at(item, j)
        }
    }

    fn item_adt(&mut self, kw: usize) -> usize {
        let kind = match self.text(kw) {
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            _ => ItemKind::Union,
        };
        let name_tok = kw + 1;
        let item = self.new_item(kind, kw, name_tok);
        let mut j = name_tok + 1;
        if self.text(j) == "<" {
            j = scan_generics(self.toks, j).0;
        }
        // Tuple struct: `struct X(..);` — skip the parens, expect `;`.
        if self.text(j) == "(" {
            j = skip_group(self.toks, j, "(", ")");
        }
        // Where clause tokens run until the body or terminator.
        while j < self.toks.len() && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) == "{" {
            // Field/variant bodies hold no nested items; skip wholesale.
            let end = skip_group(self.toks, j, "{", "}");
            self.close_at(item, end.saturating_sub(1))
        } else {
            self.close_at(item, j)
        }
    }

    fn item_trait(&mut self, kw: usize) -> usize {
        let name_tok = kw + 1;
        let item = self.new_item(ItemKind::Trait, kw, name_tok);
        let mut j = name_tok + 1;
        while j < self.toks.len() && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        if self.text(j) == "{" {
            self.open_body(item, j)
        } else {
            // Trait alias `trait X = Y;`.
            self.close_at(item, j)
        }
    }

    fn item_impl(&mut self, kw: usize) -> usize {
        let mut j = kw + 1;
        if self.text(j) == "<" {
            j = scan_generics(self.toks, j).0;
        }
        // First type path (skipping `!`, `&`, `dyn`).
        let (mut j2, mut name) = scan_type_path(self.toks, j);
        if self.text(j2) == "for" {
            let (j3, name2) = scan_type_path(self.toks, j2 + 1);
            j2 = j3;
            if !name2.is_empty() {
                name = name2;
            }
        }
        j = j2;
        while j < self.toks.len() && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let mut item = self.new_item(ItemKind::Impl, kw, kw);
        item.name = name;
        if self.text(j) == "{" {
            self.open_body(item, j)
        } else {
            self.close_at(item, j)
        }
    }

    fn item_macro(&mut self, kw: usize) -> usize {
        // `macro_rules! name { .. }`: the body is token soup; skip it.
        let mut j = kw + 1;
        if self.text(j) == "!" {
            j += 1;
        }
        let name_tok = j;
        let item = self.new_item(ItemKind::Macro, kw, name_tok);
        j += 1;
        if self.text(j) == "{" {
            let end = skip_group(self.toks, j, "{", "}");
            self.close_at(item, end.saturating_sub(1))
        } else {
            self.close_at(item, j)
        }
    }
}

/// Skip a balanced `open`..`close` group starting at `i` (which must
/// hold `open`); returns the index just past the matching close.
fn skip_group(toks: &[Token], i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = toks[j].text.as_str();
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Scan a generic parameter list starting at `<`; returns the index
/// just past the matching `>` plus the names of type parameters whose
/// bounds mention an `Rng`-flavoured trait. `->` arrows inside bounds
/// (`F: Fn(u32) -> u32`) do not close the list.
fn scan_generics(toks: &[Token], i: usize) -> (usize, Vec<String>) {
    let mut depth = 0i64;
    let mut j = i;
    let mut rng_params = Vec::new();
    // Current parameter name at angle-depth 1 and whether its bounds
    // mention Rng.
    let mut cur_name: Option<String> = None;
    let mut cur_rng = false;
    let mut after_colon = false;
    let flush = |name: &mut Option<String>, is_rng: &mut bool, out: &mut Vec<String>| {
        if let Some(n) = name.take() {
            if *is_rng {
                out.push(n);
            }
        }
        *is_rng = false;
    };
    while j < toks.len() {
        let prev_arrow = j > 0 && toks[j - 1].text == "-" && toks[j - 1].byte_end() == toks[j].byte;
        match toks[j].text.as_str() {
            "<" => {
                depth += 1;
            }
            ">" if !prev_arrow => {
                depth -= 1;
                if depth == 0 {
                    flush(&mut cur_name, &mut cur_rng, &mut rng_params);
                    return (j + 1, rng_params);
                }
            }
            "," if depth == 1 => {
                flush(&mut cur_name, &mut cur_rng, &mut rng_params);
                after_colon = false;
            }
            ":" if depth == 1 => after_colon = true,
            t if depth == 1 && toks[j].kind == TokKind::Ident => {
                if after_colon {
                    if t.contains("Rng") {
                        cur_rng = true;
                    }
                } else if cur_name.is_none() && t != "const" {
                    cur_name = Some(t.to_owned());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (j, rng_params)
}

/// Scan a `fn` parameter list starting at `(`; returns the index just
/// past the matching `)` plus the parsed parameters.
fn scan_params(toks: &[Token], i: usize) -> (usize, Vec<Param>) {
    let end = skip_group(toks, i, "(", ")");
    let inner = &toks[i + 1..end.saturating_sub(1).max(i + 1)];
    let mut params = Vec::new();
    // Split on commas at depth 0 relative to the param list (nested
    // parens/brackets/angles keep tuple types together). Angle depth
    // ignores `->` arrows.
    let mut depth = 0i64;
    let mut start = 0usize;
    let mut k = 0usize;
    let mut flush = |range: &[Token]| {
        if range.is_empty() {
            return;
        }
        params.push(parse_param(range));
    };
    while k < inner.len() {
        let prev_arrow =
            k > 0 && inner[k - 1].text == "-" && inner[k - 1].byte_end() == inner[k].byte;
        match inner[k].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ">" if !prev_arrow => depth -= 1,
            "," if depth == 0 => {
                flush(&inner[start..k]);
                start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    flush(&inner[start..]);
    (end, params)
}

fn parse_param(range: &[Token]) -> Param {
    // Split at the first `:` at relative depth 0; identifiers on the
    // left are the bound names, tokens on the right are the type.
    let mut depth = 0i64;
    let mut colon = None;
    for (k, t) in range.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 => {
                colon = Some(k);
                break;
            }
            _ => {}
        }
    }
    let (pat, ty) = match colon {
        Some(c) => (&range[..c], &range[c + 1..]),
        None => (range, &range[range.len()..]),
    };
    let names: Vec<String> = pat
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .filter(|t| t != "mut" && t != "ref")
        .collect();
    Param {
        names,
        ty: ty.iter().map(|t| t.text.clone()).collect(),
    }
}

/// Scan a type path (`foo::Bar`, `&dyn baz::Qux<T>`), returning the
/// index just past it (past any trailing generic args) and the last
/// path segment's name.
fn scan_type_path(toks: &[Token], mut j: usize) -> (usize, String) {
    // Skip leading punctuation and modifiers.
    while j < toks.len() {
        match toks[j].text.as_str() {
            "&" | "!" | "*" => j += 1,
            "dyn" | "mut" | "const" => j += 1,
            _ => break,
        }
    }
    let mut name = String::new();
    while j < toks.len() {
        if toks[j].kind == TokKind::Ident && toks[j].text != "for" && toks[j].text != "where" {
            name = toks[j].text.clone();
            j += 1;
            if j + 1 < toks.len() && toks[j].text == ":" && toks[j + 1].text == ":" {
                j += 2;
                continue;
            }
            break;
        }
        break;
    }
    if j < toks.len() && toks[j].text == "<" {
        j = scan_generics(toks, j).0;
    }
    (j, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn tree_of(src: &str) -> ItemTree {
        build(&scan(src, false).tokens)
    }

    fn find<'t>(tree: &'t ItemTree, name: &str) -> &'t Item {
        tree.items
            .iter()
            .find(|it| it.name == name)
            .unwrap_or_else(|| panic!("no item named {name}: {:?}", tree.items))
    }

    #[test]
    fn finds_nested_items_with_parents() {
        let src = "
mod outer {
    pub mod inner {
        pub fn f() { let x = 1; }
    }
    fn g() {}
}
fn top() {}
";
        let tree = tree_of(src);
        let outer = find(&tree, "outer");
        let inner = find(&tree, "inner");
        let f = find(&tree, "f");
        let g = find(&tree, "g");
        let top = find(&tree, "top");
        assert_eq!(outer.kind, ItemKind::Mod);
        assert!(inner.is_pub && f.is_pub && !g.is_pub);
        assert_eq!(tree.items[f.parent.unwrap()].name, "inner");
        assert_eq!(tree.items[inner.parent.unwrap()].name, "outer");
        assert_eq!(
            g.parent.map(|p| tree.items[p].name.clone()),
            Some("outer".into())
        );
        assert!(top.parent.is_none());
    }

    #[test]
    fn brace_matched_spans_cover_bodies() {
        let src = "fn f() { if x { y(); } else { z(); } }\nfn g() {}\n";
        let tree = tree_of(src);
        let scanned = scan(src, false);
        let f = find(&tree, "f");
        assert_eq!(scanned.tokens[f.body_start].text, "{");
        assert_eq!(scanned.tokens[f.body_end].text, "}");
        // f's span must not swallow g.
        let g = find(&tree, "g");
        assert!(f.body_end < g.kw);
        // Byte spans slice back to the item's source text.
        assert_eq!(
            &src[f.byte_start..f.byte_end],
            "fn f() { if x { y(); } else { z(); } }"
        );
    }

    #[test]
    fn impl_blocks_name_the_self_type() {
        let src = "
impl SimTime { pub fn as_micros(&self) -> u64 { self.0 } }
impl fmt::Display for route::Cache { fn fmt(&self) {} }
impl<T: Clone> From<T> for Wrapper<T> { fn from(t: T) -> Self { Wrapper(t) } }
";
        let tree = tree_of(src);
        let impls: Vec<&str> = tree
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Impl)
            .map(|i| i.name.as_str())
            .collect();
        assert_eq!(impls, vec!["SimTime", "Cache", "Wrapper"]);
        let m = find(&tree, "as_micros");
        assert_eq!(
            tree.scope_path(
                tree.items
                    .iter()
                    .position(|i| i.name == "as_micros")
                    .unwrap()
            ),
            vec!["SimTime".to_owned()]
        );
        assert!(m.is_pub);
    }

    #[test]
    fn fn_params_are_parsed() {
        let src = "fn f(&mut self, seed: u64, (a, b): (u32, u32), rng: &mut ChaCha8Rng) {}";
        let tree = tree_of(src);
        let f = find(&tree, "f");
        let names: Vec<Vec<String>> = f.params.iter().map(|p| p.names.clone()).collect();
        assert_eq!(
            names,
            vec![
                vec!["self".to_owned()],
                vec!["seed".to_owned()],
                vec!["a".to_owned(), "b".to_owned()],
                vec!["rng".to_owned()],
            ]
        );
        assert!(f.params[3].ty.iter().any(|t| t.contains("Rng")));
    }

    #[test]
    fn rng_bounded_generics_are_recorded() {
        let src = "fn f<R: Rng + ?Sized, T: Clone>(rng: &mut R, t: T) {}";
        let tree = tree_of(src);
        let f = find(&tree, "f");
        assert_eq!(f.rng_generics, vec!["R".to_owned()]);
    }

    #[test]
    fn fn_returning_impl_fn_is_not_misparsed() {
        let src = "fn mk<F: Fn(u32) -> u32>(f: F) -> impl Fn(u32) -> u32 { move |x| f(x) }\nfn after() {}";
        let tree = tree_of(src);
        assert_eq!(find(&tree, "mk").kind, ItemKind::Fn);
        assert_eq!(find(&tree, "after").kind, ItemKind::Fn);
        assert_eq!(
            tree.items.iter().filter(|i| i.kind == ItemKind::Fn).count(),
            2
        );
    }

    #[test]
    fn cfg_test_marks_descend_to_children() {
        let src = "
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {}
}
";
        let tree = tree_of(src);
        assert!(!find(&tree, "lib").is_test);
        assert!(find(&tree, "tests").is_test);
        assert!(find(&tree, "helper").is_test, "inherited from test mod");
        assert!(find(&tree, "t").is_test);
    }

    #[test]
    fn struct_and_enum_bodies_are_opaque() {
        let src = "
pub struct Host { pub speed: f64 }
struct Tuple(u32, u32);
enum Kind { A { x: u32 }, B }
fn after() {}
";
        let tree = tree_of(src);
        assert_eq!(find(&tree, "Host").kind, ItemKind::Struct);
        assert!(find(&tree, "Host").is_pub);
        assert_eq!(find(&tree, "Tuple").kind, ItemKind::Struct);
        assert_eq!(find(&tree, "Kind").kind, ItemKind::Enum);
        // No spurious items from field/variant bodies.
        assert_eq!(tree.items.len(), 4);
    }

    #[test]
    fn trait_methods_are_children_of_the_trait() {
        let src = "trait Fc { fn advance(&mut self); fn name(&self) -> &str { \"x\" } }";
        let tree = tree_of(src);
        let advance = find(&tree, "advance");
        assert!(!advance.has_body);
        let name = find(&tree, "name");
        assert!(name.has_body);
        assert_eq!(tree.items[advance.parent.unwrap()].name, "Fc");
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "macro_rules! m { ($x:expr) => { fn not_an_item() {} }; }\nfn real() {}";
        let tree = tree_of(src);
        assert!(tree.items.iter().all(|i| i.name != "not_an_item"));
        assert_eq!(find(&tree, "real").kind, ItemKind::Fn);
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { x.unwrap(); } inner(); }";
        let scanned = scan(src, false);
        let tree = &scanned.tree;
        let unwrap_tok = scanned
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .unwrap();
        let encl = tree.enclosing_fn(unwrap_tok).unwrap();
        assert_eq!(tree.items[encl].name, "inner");
    }

    #[test]
    fn whole_file_inner_cfg_test() {
        let tree = tree_of("#![cfg(test)]\nfn f() {}\n");
        assert!(tree.whole_file_test);
    }
}
