//! Hand-rolled lexical scanner for Rust source.
//!
//! This is deliberately *not* a parser. It produces a flat stream of
//! identifier / number / punctuation tokens with 1-based line:col
//! positions and byte offsets, while skipping (but recording) comments
//! and skipping the interiors of string, raw-string, byte-string and
//! char literals. The [`crate::itemtree`] scope parser layers item
//! structure (mod/fn/impl boundaries, test scopes) on top of this
//! stream; together they are exactly enough structure for simlint's
//! passes, without pulling `syn` or any other dependency into the tree.
//!
//! Two extra pieces of bookkeeping ride along:
//!
//! * every line comment is kept (for `// simlint: allow(..)` directives),
//! * each token is labelled `in_test` when it falls inside a
//!   `#[cfg(test)]` / `#[test]` item (resolved by the item tree, which
//!   owns test-scope tracking) or the whole file is test code, e.g.
//!   anything under a `tests/` directory.

use crate::itemtree::{self, ItemTree};

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Punct,
}

/// One token of a scanned source file.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
    /// Byte offset of the token's first character in the source.
    pub byte: usize,
    /// True when the token sits inside test-only code.
    pub in_test: bool,
}

impl Token {
    /// Byte offset just past the token's last character. Valid because
    /// a token's text is copied verbatim from the source.
    pub fn byte_end(&self) -> usize {
        self.byte + self.text.len()
    }
}

/// A line (`//`) comment, kept so allow-directives can be parsed.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// Result of scanning one file.
#[derive(Debug)]
pub struct ScannedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Source split into lines, for diagnostic snippets.
    pub lines: Vec<String>,
    /// Item structure: mod/fn/impl boundaries with brace-matched spans.
    pub tree: ItemTree,
}

struct Cursor<'a> {
    chars: &'a [char],
    i: usize,
    line: usize,
    col: usize,
    byte: usize,
}

impl<'a> Cursor<'a> {
    fn new(chars: &'a [char]) -> Self {
        Cursor {
            chars,
            i: 0,
            line: 1,
            col: 1,
            byte: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scan `source` into tokens + comments and build the item tree.
///
/// `whole_file_is_test` marks every token as test code regardless of
/// attributes (used for files under `tests/`, `benches/`, `examples/`).
pub fn scan(source: &str, whole_file_is_test: bool) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut cur = Cursor::new(&chars);
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    while !cur.at_end() {
        let c = cur.peek(0).unwrap();
        let (line, col, byte) = (cur.line, cur.col, cur.byte);

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            comments.push(Comment { text, line });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && !cur.at_end() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            continue;
        }

        // Raw / byte string literals: r"..", r#".."#, b"..", br#".."#.
        if c == 'r' || c == 'b' {
            if let Some(skip) = raw_or_byte_string_len(&cur) {
                for _ in 0..skip {
                    cur.bump();
                }
                continue;
            }
        }

        // Plain string literal.
        if c == '"' {
            cur.bump();
            skip_string_body(&mut cur);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime = matches!(next, Some(n) if is_ident_start(n)) && after != Some('\'');
            cur.bump(); // the quote
            if is_lifetime {
                while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                    cur.bump();
                }
            } else {
                // Char literal: consume to closing quote, honouring escapes.
                loop {
                    match cur.bump() {
                        None | Some('\'') => break,
                        Some('\\') => {
                            cur.bump();
                        }
                        _ => {}
                    }
                }
            }
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut text = String::new();
            while matches!(cur.peek(0), Some(n) if is_ident_continue(n)) {
                text.push(cur.bump().unwrap());
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
                byte,
                in_test: false,
            });
            continue;
        }

        // Number literal (handles 1_000, 0x1f, 1.5e-3, 2.0f64, and tuple
        // access `x.0.partial_cmp` — the dot is only consumed when a digit
        // follows it).
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut prev = ' ';
            loop {
                match cur.peek(0) {
                    Some(n) if is_ident_continue(n) => {
                        prev = n;
                        text.push(cur.bump().unwrap());
                    }
                    Some('.') if matches!(cur.peek(1), Some(d) if d.is_ascii_digit()) => {
                        prev = '.';
                        text.push(cur.bump().unwrap());
                    }
                    Some(s @ ('+' | '-')) if prev == 'e' || prev == 'E' => {
                        prev = s;
                        text.push(cur.bump().unwrap());
                    }
                    _ => break,
                }
            }
            tokens.push(Token {
                kind: TokKind::Number,
                text,
                line,
                col,
                byte,
                in_test: false,
            });
            continue;
        }

        // Single punctuation character.
        let ch = cur.bump().unwrap();
        tokens.push(Token {
            kind: TokKind::Punct,
            text: ch.to_string(),
            line,
            col,
            byte,
            in_test: false,
        });
    }

    let tree = itemtree::build(&tokens);
    if whole_file_is_test {
        for t in &mut tokens {
            t.in_test = true;
        }
    } else {
        itemtree::mark_tests(&tree, &mut tokens);
    }

    ScannedFile {
        tokens,
        comments,
        lines: source.lines().map(str::to_owned).collect(),
        tree,
    }
}

/// If the cursor sits on the start of a raw/byte string literal, return
/// the number of characters to skip (the whole literal); `None` when the
/// `r`/`b` is just an identifier start.
fn raw_or_byte_string_len(cur: &Cursor<'_>) -> Option<usize> {
    let mut j;
    let mut raw = false;
    match cur.peek(0)? {
        'b' => {
            j = 1;
            if cur.peek(1) == Some('r') {
                raw = true;
                j = 2;
            }
        }
        'r' => {
            raw = true;
            j = 1;
        }
        _ => return None,
    }
    let mut hashes = 0usize;
    if raw {
        while cur.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
    }
    if cur.peek(j) != Some('"') {
        return None;
    }
    j += 1; // opening quote
    if raw {
        // Scan until `"` followed by `hashes` hash marks; no escapes.
        loop {
            match cur.peek(j) {
                None => return Some(j),
                Some('"') => {
                    let mut k = 0usize;
                    while k < hashes && cur.peek(j + 1 + k) == Some('#') {
                        k += 1;
                    }
                    if k == hashes {
                        return Some(j + 1 + hashes);
                    }
                    j += 1;
                }
                Some(_) => j += 1,
            }
        }
    } else {
        // Byte string with ordinary escapes.
        loop {
            match cur.peek(j) {
                None => return Some(j),
                Some('"') => return Some(j + 1),
                Some('\\') => j += 2,
                Some(_) => j += 1,
            }
        }
    }
}

/// Consume a plain string body after the opening quote.
fn skip_string_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                cur.bump();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(s: &ScannedFile) -> Vec<&str> {
        s.tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn skips_comments_strings_and_chars() {
        let src = r##"
// a partial_cmp in a comment
let s = "partial_cmp inside string";
let r = r#"raw "quoted" partial_cmp"#;
let c = 'x'; let esc = '\''; let life: &'static str = s;
real_ident();
/* block partial_cmp /* nested */ still comment */
"##;
        let scanned = scan(src, false);
        let toks = texts(&scanned);
        assert!(toks.contains(&"real_ident"));
        assert!(!toks.contains(&"partial_cmp"));
        assert!(!toks.contains(&"quoted"));
        // lifetime consumed, not an ident token
        assert!(!toks.contains(&"static"));
        assert_eq!(scanned.comments.len(), 1, "line comment collected");
    }

    #[test]
    fn positions_are_one_based() {
        let scanned = scan("ab cd\n  ef", false);
        assert_eq!(scanned.tokens[0].line, 1);
        assert_eq!(scanned.tokens[0].col, 1);
        assert_eq!(scanned.tokens[1].col, 4);
        assert_eq!(scanned.tokens[2].line, 2);
        assert_eq!(scanned.tokens[2].col, 3);
    }

    #[test]
    fn byte_offsets_round_trip() {
        let src = "fn héllo() { let s = \"skip ünïcode\"; x.unwrap(); }\n";
        let scanned = scan(src, false);
        for t in &scanned.tokens {
            assert_eq!(
                &src[t.byte..t.byte_end()],
                t.text,
                "token {:?} at byte {} does not slice back to itself",
                t.text,
                t.byte
            );
        }
    }

    #[test]
    fn tuple_field_access_is_not_swallowed_by_numbers() {
        let scanned = scan("a.1.partial_cmp(&b.1)", false);
        let toks = texts(&scanned);
        assert!(toks.contains(&"partial_cmp"));
    }

    #[test]
    fn marks_cfg_test_modules() {
        let src = r#"
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
fn more_lib() { z.unwrap(); }
"#;
        let scanned = scan(src, false);
        let unwraps: Vec<bool> = scanned
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { a.unwrap(); }\n";
        let scanned = scan(src, false);
        let t = scanned.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!t.in_test);
    }

    #[test]
    fn cfg_not_test_is_lib_code() {
        let src = "#[cfg(not(test))]\nfn lib() { a.unwrap(); }\n";
        let scanned = scan(src, false);
        let t = scanned.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(!t.in_test);
    }

    #[test]
    fn whole_file_test_marks_everything() {
        let scanned = scan("fn f() { a.unwrap(); }", true);
        assert!(scanned.tokens.iter().all(|t| t.in_test));
    }
}
