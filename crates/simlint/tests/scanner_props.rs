//! Property tests for the scanner and item tree: random programs are
//! assembled from a pool of well-formed fragments (so brace balance
//! holds by construction), then scanned, and structural invariants are
//! checked — token byte offsets round-trip to the source, nothing
//! inside comments or string literals leaks out as a token, and
//! `#[cfg(test)]` span tracking matches the item tree's byte ranges.

use proptest::prelude::*;
use simlint::itemtree::ItemKind;
use simlint::scanner;

/// One well-formed source fragment. Identifiers embedded in comments
/// and string literals all contain the marker `hidden`, which no code
/// identifier uses — if the scanner ever tokenizes one, the leak is
/// detectable.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u32..50).prop_map(|i| format!("let x{i} = {i};\n")),
        (0u32..50).prop_map(|i| format!("// hidden{i} line comment\n")),
        (0u32..50).prop_map(|i| format!("/* hidden{i} /* nested hidden{i}b */ tail */\n")),
        (0u32..50).prop_map(|i| format!("let s{i} = \"hidden{i} \\\" escaped\";\n")),
        (0u32..50).prop_map(|i| format!("let r{i} = r#\"hidden{i} \"quoted\" raw\"#;\n")),
        (0u32..50).prop_map(|i| format!("fn f{i}(a: u32) -> u32 {{ g{i}(a) }}\n")),
        (0u32..50).prop_map(|i| format!("let c{i} = 'x'; let y{i} = c{i};\n")),
        (0u32..50).prop_map(|i| format!("struct S{i} {{ field: Vec<u64> }}\n")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every token's `byte .. byte_end()` slice reproduces its text
    /// verbatim, and its line/col agree with a recount from scratch.
    #[test]
    fn token_byte_offsets_round_trip(frags in prop::collection::vec(fragment(), 0..30)) {
        let src = frags.concat();
        let scanned = scanner::scan(&src, false);
        for t in &scanned.tokens {
            prop_assert_eq!(
                &src[t.byte..t.byte_end()],
                t.text.as_str(),
                "byte span mismatch at {}:{}",
                t.line,
                t.col
            );
            let before = &src[..t.byte];
            let line = before.matches('\n').count() + 1;
            let col = t.byte - before.rfind('\n').map_or(0, |p| p + 1) + 1;
            prop_assert_eq!(t.line, line);
            prop_assert_eq!(t.col, col);
        }
    }

    /// Comment and string-literal interiors never leak tokens: the
    /// `hidden` marker appears only inside them.
    #[test]
    fn comments_and_strings_emit_no_tokens(frags in prop::collection::vec(fragment(), 0..30)) {
        let src = frags.concat();
        let scanned = scanner::scan(&src, false);
        for t in &scanned.tokens {
            prop_assert!(
                !t.text.contains("hidden"),
                "comment/string interior leaked as token {:?} at {}:{}",
                t.text,
                t.line,
                t.col
            );
        }
    }

    /// The item tree is a well-formed forest: parents precede their
    /// children in pre-order and child byte spans nest inside them.
    #[test]
    fn item_tree_nests(frags in prop::collection::vec(fragment(), 0..30)) {
        let src = frags.concat();
        let scanned = scanner::scan(&src, false);
        for (idx, item) in scanned.tree.items.iter().enumerate() {
            if let Some(p) = item.parent {
                prop_assert!(p < idx, "parent {p} does not precede child {idx}");
                let parent = &scanned.tree.items[p];
                prop_assert!(
                    parent.byte_start <= item.byte_start && item.byte_end <= parent.byte_end,
                    "child span {}..{} escapes parent span {}..{}",
                    item.byte_start,
                    item.byte_end,
                    parent.byte_start,
                    parent.byte_end
                );
            }
        }
    }

    /// `#[cfg(test)] mod tests { .. }` marks exactly the tokens inside
    /// the mod's byte range as test code, wherever the mod lands and
    /// whatever surrounds it. The same program with a plain (un-gated)
    /// mod marks nothing.
    #[test]
    fn cfg_test_spans_match_the_mod_body(
        before in prop::collection::vec(fragment(), 0..8),
        inside in prop::collection::vec(fragment(), 1..8),
        after in prop::collection::vec(fragment(), 0..8),
    ) {
        let body = format!(
            "{}#[cfg(test)]\nmod tests {{\n{}}}\n{}",
            before.concat(),
            inside.concat(),
            after.concat()
        );
        let scanned = scanner::scan(&body, false);
        let (_, tests_mod) = scanned
            .tree
            .items
            .iter()
            .enumerate()
            .find(|(_, it)| it.kind == ItemKind::Mod && it.name == "tests")
            .expect("tests mod in item tree");
        prop_assert!(tests_mod.has_test_attr);
        for t in &scanned.tokens {
            let in_span = t.byte >= tests_mod.byte_start && t.byte < tests_mod.byte_end;
            prop_assert_eq!(
                t.in_test,
                in_span,
                "token {:?} at {}:{} in_test={} but mod span is {}..{}",
                t.text.clone(),
                t.line,
                t.col,
                t.in_test,
                tests_mod.byte_start,
                tests_mod.byte_end
            );
        }

        let ungated = format!(
            "{}mod helpers {{\n{}}}\n{}",
            before.concat(),
            inside.concat(),
            after.concat()
        );
        let scanned = scanner::scan(&ungated, false);
        for t in &scanned.tokens {
            prop_assert!(!t.in_test, "un-gated mod marked {:?} as test", t.text);
        }
    }
}
