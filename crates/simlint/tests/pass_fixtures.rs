//! Fixture tests for the workspace analysis pipeline: synthetic
//! in-memory workspaces fed through [`simlint::analyze_sources`],
//! asserting each new pass fires (and stays quiet) where it should.
//!
//! The fixtures deliberately mirror the shapes the passes were built
//! for: a multi-hop panic→`pub fn` call chain spanning crates, a
//! stale allow directive, RNG constructions with and without seed
//! evidence, and f64 sim-time accumulation next to its integer twin.

use simlint::{analyze_sources, Finding, Lint};

fn ws(files: &[(&str, &str)]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn of_lint(findings: &[Finding], lint: Lint) -> Vec<&Finding> {
    findings.iter().filter(|f| f.lint == lint).collect()
}

// ---------------------------------------------------------------- panic-reachability

/// The acceptance-criterion fixture: a `pub` fn in a sim crate calls a
/// same-crate helper, which calls into another crate, which panics.
/// The diagnostic must render the full multi-hop chain as note lines.
#[test]
fn panic_reachability_renders_multi_hop_chain() {
    let report = analyze_sources(&ws(&[
        (
            "crates/grid/src/api.rs",
            "pub fn submit(req: u32) -> u32 {\n    crate::inner::route(req)\n}\n",
        ),
        (
            "crates/grid/src/inner.rs",
            "pub fn route(req: u32) -> u32 {\n    deep::decode(req)\n}\n",
        ),
        (
            "crates/apps/src/deep.rs",
            "pub fn decode(req: u32) -> u32 {\n    let table: Option<u32> = None;\n    table.unwrap() + req\n}\n",
        ),
    ]));

    let hits = of_lint(&report.findings, Lint::PanicReachability);
    let submit = hits
        .iter()
        .find(|f| f.message.contains("`grid::api::submit`"))
        .expect("reachability finding for pub fn submit");
    assert_eq!(submit.file, "crates/grid/src/api.rs");
    assert!(
        submit.message.contains("2 calls deep"),
        "expected a two-hop path, got: {}",
        submit.message
    );
    // The note chain walks the actual call path, each hop anchored at
    // its call site (caller file:line), ending at the panic site.
    assert_eq!(
        submit.notes,
        vec![
            "`grid::api::submit` calls `grid::inner::route` (crates/grid/src/api.rs:2)",
            "`grid::inner::route` calls `apps::deep::decode` (crates/grid/src/inner.rs:2)",
            "panic site: `.unwrap()` (crates/apps/src/deep.rs:3)",
        ]
    );

    // The intermediate pub fn gets its own (shorter) finding too.
    assert!(
        hits.iter().any(
            |f| f.message.contains("`grid::inner::route`") && f.message.contains("1 call deep")
        ),
        "route should be flagged one hop from the panic"
    );
}

#[test]
fn panic_reachability_direct_panic_is_zero_hops() {
    let report = analyze_sources(&ws(&[(
        "crates/core/src/direct.rs",
        "pub fn explode() {\n    panic!(\"boom\");\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::PanicReachability);
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("contains a panic site"));
}

#[test]
fn panic_reachability_quiet_when_callee_is_clean() {
    let report = analyze_sources(&ws(&[
        (
            "crates/grid/src/api.rs",
            "pub fn submit(req: u32) -> u32 {\n    crate::inner::route(req)\n}\n",
        ),
        (
            "crates/grid/src/inner.rs",
            "pub fn route(req: u32) -> u32 {\n    req.saturating_add(1)\n}\n",
        ),
    ]));
    assert!(of_lint(&report.findings, Lint::PanicReachability).is_empty());
}

/// A reasoned `allow(panic-in-lib)` at the panic site removes it as a
/// hazard, so nothing upstream is flagged either.
#[test]
fn allowed_panic_site_is_not_a_hazard() {
    let report = analyze_sources(&ws(&[
        (
            "crates/grid/src/api.rs",
            "pub fn submit(req: u32) -> u32 {\n    helper(req)\n}\n\nfn helper(req: u32) -> u32 {\n    // simlint: allow(panic-in-lib): bounds checked by the caller\n    req.checked_add(1).unwrap()\n}\n",
        ),
    ]));
    assert!(of_lint(&report.findings, Lint::PanicReachability).is_empty());
    // And the directive is not stale — it suppressed a real hazard.
    assert!(of_lint(&report.findings, Lint::StaleAllow).is_empty());
}

/// Panic sites inside `#[cfg(test)]` code never count as hazards.
#[test]
fn test_code_panics_are_ignored() {
    let report = analyze_sources(&ws(&[(
        "crates/grid/src/api.rs",
        "pub fn submit(req: u32) -> u32 {\n    req\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::submit(u32::MAX).checked_add(1).unwrap();\n    }\n}\n",
    )]));
    assert!(of_lint(&report.findings, Lint::PanicReachability).is_empty());
}

// ---------------------------------------------------------------- stale-allow

#[test]
fn stale_allow_is_reported_by_the_workspace_audit() {
    let report = analyze_sources(&ws(&[(
        "crates/metasim/src/clean.rs",
        "// simlint: allow(panic-in-lib): this fn used to unwrap, now it doesn't\npub fn tidy(x: u32) -> u32 {\n    x.saturating_add(1)\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::StaleAllow);
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
    assert_eq!(hits[0].file, "crates/metasim/src/clean.rs");
    assert_eq!(hits[0].line, 1);
    assert!(hits[0].message.contains("panic-in-lib"));
}

#[test]
fn used_allow_is_not_stale() {
    let report = analyze_sources(&ws(&[(
        "crates/metasim/src/hot.rs",
        "pub fn pick(xs: &[u32]) -> u32 {\n    // simlint: allow(panic-in-lib): caller guarantees non-empty\n    *xs.first().unwrap()\n}\n",
    )]));
    assert!(of_lint(&report.findings, Lint::StaleAllow).is_empty());
    let allowed: Vec<_> = report.findings.iter().filter(|f| f.allowed).collect();
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].lint, Lint::PanicInLib);
}

// ---------------------------------------------------------------- rng-discipline

#[test]
fn rng_discipline_flags_from_entropy() {
    let report = analyze_sources(&ws(&[(
        "crates/nws/src/jitter.rs",
        "pub fn jitter() -> u64 {\n    let mut rng = ChaCha8Rng::from_entropy();\n    rng.next_u64()\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::RngDiscipline);
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
    assert!(hits[0].message.contains("from_entropy"));
}

#[test]
fn rng_discipline_accepts_explicit_seed_param() {
    let report = analyze_sources(&ws(&[(
        "crates/nws/src/jitter.rs",
        "pub fn jitter(seed: u64) -> u64 {\n    let mut rng = ChaCha8Rng::seed_from_u64(seed);\n    rng.next_u64()\n}\n",
    )]));
    assert!(of_lint(&report.findings, Lint::RngDiscipline).is_empty());
}

#[test]
fn rng_discipline_flags_second_stream_beside_rng_param() {
    let report = analyze_sources(&ws(&[(
        "crates/nws/src/noise.rs",
        "pub fn perturb(rng: &mut impl Rng, x: f64) -> f64 {\n    let mut local = ChaCha8Rng::seed_from_u64(42);\n    x + local.next_u64() as f64\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::RngDiscipline);
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
}

// ---------------------------------------------------------------- sim-time-hygiene

#[test]
fn sim_time_hygiene_flags_f64_accumulation() {
    let report = analyze_sources(&ws(&[(
        "crates/metasim/src/acc.rs",
        "pub fn total(done: SimTime, start: SimTime, acc: &mut f64) {\n    *acc += (done - start).as_secs_f64();\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::SimTimeHygiene);
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
}

#[test]
fn sim_time_hygiene_accepts_integer_accumulation() {
    let report = analyze_sources(&ws(&[(
        "crates/metasim/src/acc.rs",
        "pub fn total(done: SimTime, start: SimTime, acc: &mut SimTime) {\n    *acc += done - start;\n}\n",
    )]));
    assert!(of_lint(&report.findings, Lint::SimTimeHygiene).is_empty());
}

#[test]
fn sim_time_hygiene_flags_seconds_round_trip() {
    let report = analyze_sources(&ws(&[(
        "crates/metasim/src/rt.rs",
        "pub fn jitterless(t: SimTime) -> SimTime {\n    SimTime::from_secs_f64(t.as_secs_f64())\n}\n",
    )]));
    let hits = of_lint(&report.findings, Lint::SimTimeHygiene);
    assert_eq!(hits.len(), 1, "findings: {:#?}", report.findings);
}

// ---------------------------------------------------------------- policy scoping

/// The three new passes are sim-crate policy; a non-sim crate with the
/// same source stays quiet.
#[test]
fn new_passes_are_sim_crate_scoped() {
    let src = "pub fn jitter() -> u64 {\n    let mut rng = ChaCha8Rng::from_entropy();\n    rng.next_u64()\n}\n";
    let sim = analyze_sources(&ws(&[("crates/nws/src/j.rs", src)]));
    let non_sim = analyze_sources(&ws(&[("crates/cli/src/j.rs", src)]));
    assert_eq!(of_lint(&sim.findings, Lint::RngDiscipline).len(), 1);
    assert!(of_lint(&non_sim.findings, Lint::RngDiscipline).is_empty());
}

// ---------------------------------------------------------------- report ordering

/// Findings sort by (file, line, col, lint, message) regardless of the
/// order files were handed in, so reports diff cleanly run to run.
#[test]
fn report_order_is_independent_of_input_order() {
    let files = [
        (
            "crates/metasim/src/b.rs",
            "pub fn b() {\n    panic!(\"b\");\n}\n",
        ),
        (
            "crates/metasim/src/a.rs",
            "pub fn a() {\n    panic!(\"a\");\n}\n",
        ),
    ];
    let fwd = analyze_sources(&ws(&files));
    let mut rev_files = files;
    rev_files.reverse();
    let rev = analyze_sources(&ws(&rev_files));
    assert_eq!(fwd.render_json(), rev.render_json());
    let names: Vec<&str> = fwd.findings.iter().map(|f| f.file.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "findings must come out path-sorted");
}

/// Byte-stability pin: the exact JSON rendering of a fixed fixture.
/// If this test fails, a formatting change leaked into `render_json`
/// — CI artifacts and downstream diff tooling depend on this shape.
#[test]
fn render_json_is_byte_stable() {
    let report = analyze_sources(&ws(&[(
        "crates/core/src/direct.rs",
        "pub fn explode() {\n    panic!(\"boom\");\n}\n",
    )]));
    let expected = concat!(
        "{\n",
        "  \"files_scanned\": 1,\n",
        "  \"unallowed\": 2,\n",
        "  \"allowed\": 0,\n",
        "  \"findings\": [\n",
        "    {\"lint\": \"panic-reachability\", \"file\": \"crates/core/src/direct.rs\", ",
        "\"line\": 1, \"col\": 8, ",
        "\"message\": \"pub fn `core::direct::explode` contains a panic site\", ",
        "\"snippet\": \"pub fn explode() {\", ",
        "\"notes\": [\"panic site: `panic!` (crates/core/src/direct.rs:2)\"], ",
        "\"allowed\": false},\n",
        "    {\"lint\": \"panic-in-lib\", \"file\": \"crates/core/src/direct.rs\", ",
        "\"line\": 2, \"col\": 5, ",
        "\"message\": \"`panic!` in library code aborts a simulation mid-run\", ",
        "\"snippet\": \"    panic!(\\\"boom\\\");\", \"allowed\": false}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(report.render_json(), expected);
}

// ---------------------------------------------------------------- github format

#[test]
fn github_rendering_escapes_newlines_in_notes() {
    let report = analyze_sources(&ws(&[(
        "crates/core/src/direct.rs",
        "pub fn explode() {\n    panic!(\"boom\");\n}\n",
    )]));
    let gh = report.render_github();
    for line in gh.lines() {
        assert!(
            line.starts_with("::error file="),
            "non-annotation line in github output: {line}"
        );
    }
    assert!(
        gh.contains("title=simlint(panic-reachability)"),
        "github output: {gh}"
    );
    assert!(
        gh.contains("%0Anote: panic site:"),
        "notes must be %0A-folded into the message: {gh}"
    );
}
