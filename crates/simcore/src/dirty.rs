//! Deduplicating dirty-index bookkeeping with deterministic drain.
//!
//! The incremental contention engine in `metasim::net` marks the links
//! touched by each event (a flow arriving, finishing, or a link's
//! availability stepping) and recomputes shares only for flows crossing
//! a marked link. [`DirtySet`] is the mark set: O(1) insert with
//! dedup, O(k log k) sorted drain (k = marks, not universe size), and
//! no hashing — a bitmap plus a touched-list, so iteration order is a
//! pure function of the inserted indices and the simulation stays
//! deterministic.

/// A deduplicating set of `usize` indices over a dense universe
/// (link ids, host ids), drained in sorted order.
#[derive(Debug, Default)]
pub struct DirtySet {
    marked: Vec<bool>,
    touched: Vec<usize>,
}

impl DirtySet {
    /// An empty set.
    pub fn new() -> Self {
        DirtySet::default()
    }

    /// An empty set pre-sized for indices below `universe`.
    pub fn with_universe(universe: usize) -> Self {
        DirtySet {
            marked: vec![false; universe],
            touched: Vec::new(),
        }
    }

    /// Mark `idx` dirty. Re-marking is a no-op. The bitmap grows to
    /// fit indices beyond the declared universe.
    pub fn insert(&mut self, idx: usize) {
        if idx >= self.marked.len() {
            self.marked.resize(idx + 1, false);
        }
        if !self.marked[idx] {
            self.marked[idx] = true;
            self.touched.push(idx);
        }
    }

    /// Whether `idx` is currently marked.
    pub fn is_dirty(&self, idx: usize) -> bool {
        self.marked.get(idx).copied().unwrap_or(false)
    }

    /// Number of distinct marked indices.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True if nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Unmark everything, keeping the bitmap allocation.
    pub fn clear(&mut self) {
        for &idx in &self.touched {
            self.marked[idx] = false;
        }
        self.touched.clear();
    }

    /// Take the marked indices in ascending order, leaving the set
    /// empty. Sorted drain keeps downstream recomputation order — and
    /// therefore trace bytes — independent of the order marks arrived.
    pub fn drain_sorted(&mut self) -> Vec<usize> {
        for &idx in &self.touched {
            self.marked[idx] = false;
        }
        let mut out = std::mem::take(&mut self.touched);
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_drains_sorted() {
        let mut d = DirtySet::with_universe(4);
        d.insert(3);
        d.insert(0);
        d.insert(3);
        d.insert(2);
        assert_eq!(d.len(), 3);
        assert!(d.is_dirty(3));
        assert!(!d.is_dirty(1));
        assert_eq!(d.drain_sorted(), vec![0, 2, 3]);
        assert!(d.is_empty());
        assert!(!d.is_dirty(3));
    }

    #[test]
    fn grows_beyond_declared_universe() {
        let mut d = DirtySet::with_universe(2);
        d.insert(10);
        d.insert(1);
        assert!(d.is_dirty(10));
        assert_eq!(d.drain_sorted(), vec![1, 10]);
    }

    #[test]
    fn clear_resets_without_drain() {
        let mut d = DirtySet::new();
        d.insert(5);
        d.insert(7);
        d.clear();
        assert!(d.is_empty());
        assert!(!d.is_dirty(5));
        d.insert(5);
        assert_eq!(d.drain_sorted(), vec![5]);
    }

    #[test]
    fn reusable_across_rounds() {
        let mut d = DirtySet::with_universe(8);
        for round in 0..3 {
            d.insert(round);
            d.insert(7 - round);
            let got = d.drain_sorted();
            assert_eq!(got, vec![round.min(7 - round), round.max(7 - round)]);
            assert!(d.is_empty());
        }
    }
}
