//! An indexed, cancellable event queue.
//!
//! Three operations distinguish this from a plain `BinaryHeap`:
//!
//! * [`EventQueue::schedule`] returns a stable [`EventId`] handle;
//! * [`EventQueue::cancel`] removes a pending event by handle and
//!   returns its payload;
//! * [`EventQueue::reschedule`] moves a pending event to a new
//!   timestamp without touching its payload.
//!
//! All three are O(log n) amortized: cancellation and rescheduling are
//! implemented by *invalidating* the event's heap entry (a slot
//! generation/sequence check at pop time) rather than by sifting it
//! out, and the heap is rebuilt from live entries whenever stale
//! entries outnumber live ones — the classic lazy-deletion scheme, so
//! no operation ever scans the heap.
//!
//! Ordering is `(time, schedule-sequence)`: ties in simulated time pop
//! in the order they were scheduled, so a simulation replays
//! identically across runs and platforms regardless of payload type.
//! A reschedule re-enters the FIFO at its new scheduling point — an
//! event rescheduled onto a timestamp that already has pending events
//! pops *after* them, exactly as if it had been cancelled and
//! scheduled afresh.
//!
//! Handles are generation-checked: once an event has popped or been
//! cancelled, its id is dead forever, and a dead id passed to any
//! operation is a no-op (`None`/`false`), never a panic and never an
//! aliased hit on a later event that happens to reuse the slot.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Stable handle on a scheduled event: a slot index plus a generation
/// tag, so handles never alias across slot reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId(((slot as u64) << 32) | generation as u64)
    }

    fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// One slot of payload storage. Freed slots keep their (bumped)
/// generation so stale [`EventId`]s can never resurrect them.
struct Slot<T, E> {
    generation: u32,
    state: SlotState<T, E>,
}

enum SlotState<T, E> {
    /// Slot is free; `next_free` chains the free list.
    Free { next_free: Option<u32> },
    /// Slot holds a pending event. `seq` is the key of the (single)
    /// live heap entry pointing at this slot; heap entries with any
    /// other seq are stale and skipped at pop.
    Busy { time: T, seq: u64, payload: E },
}

struct HeapEntry<T> {
    time: T,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl<T: Ord> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T: Ord> Eq for HeapEntry<T> {}
impl<T: Ord> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An indexed priority queue of timestamped events with stable ids,
/// O(log n) amortized cancel/reschedule, and deterministic FIFO
/// tie-breaking at equal timestamps.
///
/// Generic over the timestamp type `T` (any `Ord + Copy` — `metasim`
/// uses its fixed-point `SimTime`) and the payload type `E`.
pub struct EventQueue<T, E> {
    heap: BinaryHeap<HeapEntry<T>>,
    slots: Vec<Slot<T, E>>,
    free_head: Option<u32>,
    /// Monotone schedule sequence: the FIFO tie-break at equal times.
    next_seq: u64,
    /// Number of pending (live) events.
    live: usize,
}

impl<T: Ord + Copy, E> Default for EventQueue<T, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Copy, E> EventQueue<T, E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: None,
            next_seq: 0,
            live: 0,
        }
    }

    /// An empty queue with room for `n` pending events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            slots: Vec::with_capacity(n),
            free_head: None,
            next_seq: 0,
            live: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedule `payload` at time `at`; the returned handle stays valid
    /// until the event pops or is cancelled.
    pub fn schedule(&mut self, at: T, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free_head {
            Some(idx) => {
                let s = &mut self.slots[idx as usize];
                self.free_head = match s.state {
                    SlotState::Free { next_free } => next_free,
                    // Unreachable: the free list only chains Free slots.
                    SlotState::Busy { .. } => None,
                };
                s.state = SlotState::Busy {
                    time: at,
                    seq,
                    payload,
                };
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Busy {
                        time: at,
                        seq,
                        payload,
                    },
                });
                idx
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        EventId::new(slot, generation)
    }

    /// Release a busy slot onto the free list, bumping its generation
    /// so every outstanding handle (and heap entry) for it dies.
    /// Returns `None` (leaving the slot untouched) if it was not busy.
    fn free_slot(&mut self, idx: usize) -> Option<E> {
        let slot = self.slots.get_mut(idx)?;
        let state = std::mem::replace(
            &mut slot.state,
            SlotState::Free {
                next_free: self.free_head,
            },
        );
        match state {
            SlotState::Busy { payload, .. } => {
                slot.generation = slot.generation.wrapping_add(1);
                self.free_head = Some(idx as u32);
                self.live -= 1;
                Some(payload)
            }
            SlotState::Free { next_free } => {
                slot.state = SlotState::Free { next_free };
                None
            }
        }
    }

    /// True when `id` still names a pending event.
    fn live_slot(&self, id: EventId) -> bool {
        matches!(
            self.slots.get(id.slot()),
            Some(Slot {
                generation,
                state: SlotState::Busy { .. },
            }) if *generation == id.generation()
        )
    }

    /// Whether `id` names a still-pending event.
    pub fn contains(&self, id: EventId) -> bool {
        self.live_slot(id)
    }

    /// The timestamp of a pending event, or `None` if the handle is
    /// dead.
    pub fn time_of(&self, id: EventId) -> Option<T> {
        match self.slots.get(id.slot()) {
            Some(Slot {
                generation,
                state: SlotState::Busy { time, .. },
            }) if *generation == id.generation() => Some(*time),
            _ => None,
        }
    }

    /// Cancel a pending event, returning its payload. Dead handles
    /// (already popped, cancelled, or never issued by this queue)
    /// return `None`.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        if !self.live_slot(id) {
            return None;
        }
        let payload = self.free_slot(id.slot());
        self.maybe_compact();
        payload
    }

    /// Move a pending event to a new timestamp, keeping its id. The
    /// event re-enters the FIFO at its new scheduling point (it pops
    /// after existing events at the same timestamp). Returns `false`
    /// on a dead handle.
    pub fn reschedule(&mut self, id: EventId, at: T) -> bool {
        if !self.live_slot(id) {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = id.slot();
        if let SlotState::Busy {
            time, seq: s_seq, ..
        } = &mut self.slots[idx].state
        {
            *time = at;
            *s_seq = seq;
        }
        self.heap.push(HeapEntry {
            time: at,
            seq,
            slot: idx as u32,
            generation: id.generation(),
        });
        self.maybe_compact();
        true
    }

    /// Pop the earliest pending event as `(time, id, payload)`. The
    /// returned id is dead (useful only for logging/correlation).
    pub fn pop(&mut self) -> Option<(T, EventId, E)> {
        loop {
            let entry = self.heap.pop()?;
            let idx = entry.slot as usize;
            let valid = matches!(
                self.slots.get(idx),
                Some(Slot {
                    generation,
                    state: SlotState::Busy { seq, .. },
                }) if *generation == entry.generation && *seq == entry.seq
            );
            if !valid {
                continue; // stale: cancelled or rescheduled since push
            }
            let id = EventId::new(entry.slot, entry.generation);
            let payload = self.free_slot(idx)?;
            return Some((entry.time, id, payload));
        }
    }

    /// The timestamp of the earliest pending event, without popping it.
    pub fn peek_time(&mut self) -> Option<T> {
        loop {
            let entry = self.heap.peek()?;
            let idx = entry.slot as usize;
            let valid = matches!(
                self.slots.get(idx),
                Some(Slot {
                    generation,
                    state: SlotState::Busy { seq, .. },
                }) if *generation == entry.generation && *seq == entry.seq
            );
            if valid {
                return Some(entry.time);
            }
            self.heap.pop(); // discard stale head
        }
    }

    /// Drop stale heap entries when they outnumber live ones: rebuild
    /// the heap from the busy slots in O(live). Amortized against the
    /// cancels/reschedules that created the stale entries, this keeps
    /// every operation O(log live).
    fn maybe_compact(&mut self) {
        if self.heap.len() <= 2 * self.live + 16 {
            return;
        }
        let mut entries = Vec::with_capacity(self.live);
        for (idx, slot) in self.slots.iter().enumerate() {
            if let SlotState::Busy { time, seq, .. } = slot.state {
                entries.push(HeapEntry {
                    time,
                    seq,
                    slot: idx as u32,
                    generation: slot.generation,
                });
            }
        }
        self.heap = BinaryHeap::from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        q.schedule(3, "c");
        q.schedule(1, "a");
        q.schedule(2, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q: EventQueue<u64, i32> = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_and_returns_payload() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        let a = q.schedule(1, "a");
        let b = q.schedule(2, "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.len(), 1);
        assert!(!q.contains(a));
        assert!(q.contains(b));
        // Double-cancel is a no-op.
        assert_eq!(q.cancel(a), None);
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((2, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn reschedule_moves_event() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        let a = q.schedule(10, "late");
        q.schedule(5, "early");
        assert!(q.reschedule(a, 1));
        assert_eq!(q.time_of(a), Some(1));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((1, "late")));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((5, "early")));
        // Handle is dead after the pop.
        assert!(!q.reschedule(a, 3));
    }

    #[test]
    fn reschedule_reenters_fifo_behind_existing_ties() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        let moved = q.schedule(1, "moved");
        q.schedule(7, "first");
        q.schedule(7, "second");
        assert!(q.reschedule(moved, 7));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!["first", "second", "moved"]);
    }

    #[test]
    fn slot_reuse_does_not_alias_old_handles() {
        let mut q: EventQueue<u64, i32> = EventQueue::new();
        let a = q.schedule(1, 1);
        assert_eq!(q.cancel(a), Some(1));
        // The freed slot is reused, but the old handle stays dead.
        let b = q.schedule(2, 2);
        assert!(!q.contains(a));
        assert_eq!(q.cancel(a), None);
        assert!(!q.reschedule(a, 9));
        assert!(q.contains(b));
        assert_eq!(q.pop().map(|(t, _, p)| (t, p)), Some((2, 2)));
    }

    #[test]
    fn peek_time_skips_stale_entries() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        let a = q.schedule(1, "a");
        q.schedule(5, "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn heavy_cancel_churn_stays_consistent() {
        let mut q: EventQueue<u64, usize> = EventQueue::new();
        let mut ids = Vec::new();
        for round in 0..50u64 {
            for i in 0..20usize {
                ids.push(q.schedule(round * 100 + i as u64, i));
            }
            // Cancel every other outstanding event.
            let mut kept = Vec::new();
            for (k, id) in ids.drain(..).enumerate() {
                if k % 2 == 0 {
                    q.cancel(id);
                } else if q.contains(id) {
                    kept.push(id);
                }
            }
            ids = kept;
        }
        let mut last = None;
        let mut n = 0;
        while let Some((t, _, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(t >= prev, "pop order regressed: {t} after {prev}");
            }
            last = Some(t);
            n += 1;
        }
        assert!(n > 0);
        assert!(q.is_empty());
    }
}
