#![warn(missing_docs)]

//! # simcore — event-engine primitives for fleet-scale simulation
//!
//! The seed simulator ran every queue off a plain `BinaryHeap`: fine for
//! the ~10-host Figure-2 testbed, fatal at the ROADMAP's 10⁴-host /
//! 10⁶-job target, where the dominant operation is not *push/pop* but
//! *revise* — a flow's rate changes, a placement is revoked, a forecast
//! shifts a completion — and a heap without handles forces a full
//! rebuild or a scan. `simcore` provides the two primitives the
//! rearchitected stack is built on:
//!
//! * [`EventQueue`] — an indexed priority queue with **stable event
//!   ids**, O(log n) amortized [`EventQueue::cancel`] /
//!   [`EventQueue::reschedule`], and a deterministic FIFO tie-break at
//!   equal timestamps (ties pop in schedule order, so replays are
//!   byte-identical across runs and platforms).
//! * [`DirtySet`] — deduplicating dirty-index bookkeeping with a
//!   deterministic (sorted) drain order, used by `metasim`'s
//!   incremental contention engine to recompute only the flows whose
//!   links actually changed.
//!
//! The queue is generic over the timestamp type (`T: Ord + Copy`) so
//! this crate has no dependency on `metasim`; `metasim` instantiates it
//! with its fixed-point `SimTime` and the grid service with plain
//! finish times. Determinism is a hard contract: nothing here reads a
//! clock, draws entropy, or iterates a hash map — the same op sequence
//! always yields the same pop sequence (enforced by the workspace's
//! `simlint` sim-crate policy, which includes `simcore`).

pub mod dirty;
pub mod queue;

pub use dirty::DirtySet;
pub use queue::{EventId, EventQueue};
