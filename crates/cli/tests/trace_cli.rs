//! End-to-end exit-code contract of `apples-cli trace` and the grid
//! `--trace` flag: two same-seed traced runs must produce files that
//! `trace diff` calls identical (exit 0); different seeds diverge
//! (exit 1); bad invocations exit 2.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_apples-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("apples-trace-cli-{}-{name}", std::process::id()));
    p
}

fn traced_grid_run(seed: u64, out: &PathBuf) {
    let status = cli()
        .args([
            "grid",
            "--rate",
            "0.005",
            "--duration",
            "900",
            "--seed",
            &seed.to_string(),
            "--trace",
        ])
        .arg(out)
        .status()
        .expect("spawn apples-cli grid");
    assert!(status.success(), "traced grid run failed");
}

#[test]
fn same_seed_runs_diff_identical_and_exit_codes_hold() {
    let a = tmp("a.jsonl");
    let b = tmp("b.jsonl");
    let c = tmp("c.jsonl");
    traced_grid_run(42, &a);
    traced_grid_run(42, &b);
    traced_grid_run(43, &c);

    // Byte-identical on disk, and `trace diff` agrees with exit 0.
    let bytes_a = std::fs::read(&a).expect("read a");
    let bytes_b = std::fs::read(&b).expect("read b");
    assert!(!bytes_a.is_empty(), "trace file is empty");
    assert_eq!(bytes_a, bytes_b, "same-seed trace files differ on disk");
    let diff = cli()
        .args(["trace", "diff"])
        .args([&a, &b])
        .output()
        .expect("trace diff");
    assert_eq!(diff.status.code(), Some(0), "identical traces must exit 0");
    assert!(String::from_utf8_lossy(&diff.stdout).contains("identical"));

    // A different seed diverges: exit 1 and the first bad line named.
    let diff = cli()
        .args(["trace", "diff"])
        .args([&a, &c])
        .output()
        .expect("trace diff");
    assert_eq!(diff.status.code(), Some(1), "divergent traces must exit 1");
    assert!(String::from_utf8_lossy(&diff.stdout).contains("divergence at line"));

    // Summary renders per-kind counts for a valid trace.
    let summary = cli()
        .args(["trace", "summary"])
        .arg(&a)
        .output()
        .expect("trace summary");
    assert_eq!(summary.status.code(), Some(0));
    let text = String::from_utf8_lossy(&summary.stdout).to_string();
    assert!(text.contains("events:"), "{text}");
    assert!(text.contains("job_submitted"), "{text}");

    for p in [a, b, c] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn usage_and_io_errors_exit_2() {
    // No subcommand.
    let out = cli().arg("trace").output().expect("bare trace");
    assert_eq!(out.status.code(), Some(2));
    // Unknown subcommand.
    let out = cli()
        .args(["trace", "frobnicate", "x"])
        .output()
        .expect("bad sub");
    assert_eq!(out.status.code(), Some(2));
    // Missing file.
    let out = cli()
        .args(["trace", "summary", "/nonexistent/trace.jsonl"])
        .output()
        .expect("missing file");
    assert_eq!(out.status.code(), Some(2));
    // diff with only one file is usage, not a diff.
    let out = cli()
        .args(["trace", "diff", "/nonexistent/a.jsonl"])
        .output()
        .expect("one-arg diff");
    assert_eq!(out.status.code(), Some(2));
}
