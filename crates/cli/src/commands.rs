//! Subcommand implementations.

use crate::args::{ArgError, Parsed};
use apples::coordinator::Coordinator;
use apples::info::{ForecastSource, InfoPool};
use apples::user::{PerformanceMetric, UserSpec};
use apples::Schedule;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{blocked_uniform, static_strip};
use apples_apps::nile::{cleo_analysis_hat, SiteManager};
use apples_apps::react3d;
use metasim::exec::simulate_spmd;
use metasim::host::HostSpec;
use metasim::testbed::{pcl_sdsc, LoadProfile, Testbed, TestbedConfig};
use metasim::{HostId, SimTime};
use nws::{ResourceKey, WeatherService, WeatherServiceConfig};

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn profile_of(p: &Parsed) -> Result<LoadProfile, ArgError> {
    match p.get("profile", "moderate") {
        "dedicated" => Ok(LoadProfile::Dedicated),
        "light" => Ok(LoadProfile::Light),
        "moderate" => Ok(LoadProfile::Moderate),
        "heavy" => Ok(LoadProfile::Heavy),
        other => Err(ArgError(format!("unknown profile {other:?}"))),
    }
}

fn build_testbed(p: &Parsed) -> Result<Testbed, Box<dyn std::error::Error>> {
    let cfg = TestbedConfig {
        profile: profile_of(p)?,
        horizon: SimTime::from_secs(400_000),
        seed: p.get_parsed("seed", 1996u64)?,
        with_sp2: p.switch("sp2"),
    };
    Ok(pcl_sdsc(&cfg)?)
}

/// `apples-cli testbed`
pub fn testbed(p: &Parsed) -> CmdResult {
    let tb = build_testbed(p)?;
    println!("SDSC/PCL testbed (Figure 2), profile {:?}:", profile_of(p)?);
    for h in tb.topo.hosts() {
        let mean = h.mean_availability(SimTime::ZERO, SimTime::from_secs(100_000));
        println!(
            "  {:>14}  {:>5.0} Mflop/s  {:>6.0} MB  mean availability {:.2}",
            h.spec.name, h.spec.mflops, h.spec.mem_mb, mean
        );
    }
    for l in tb.topo.links() {
        println!(
            "  {:>18}  {:>6.2} MB/s  {:>5.1} ms",
            l.spec.name,
            l.spec.bandwidth_mbps,
            l.spec.latency.as_secs_f64() * 1e3
        );
    }
    Ok(())
}

/// `apples-cli schedule`
pub fn schedule(p: &Parsed) -> CmdResult {
    let tb = build_testbed(p)?;
    let n: usize = p.get_parsed("n", 2000)?;
    let iterations: usize = p.get_parsed("iterations", 100)?;
    let warmup = SimTime::from_secs(p.get_parsed("warmup", 600u64)?);

    let (hat, mut user) = jacobi_context(n, iterations);
    user.max_hosts = p.get_parsed("max-hosts", usize::MAX)?;
    user.metric = match p.get("metric", "time") {
        "time" => PerformanceMetric::ExecutionTime,
        "speedup" => PerformanceMetric::Speedup,
        other => match other.strip_prefix("cost:") {
            Some(rate) => PerformanceMetric::Cost {
                per_host_second: rate
                    .parse()
                    .map_err(|_| ArgError(format!("bad cost rate {rate:?}")))?,
            },
            None => return Err(ArgError(format!("unknown metric {other:?}")).into()),
        },
    };
    let source = match p.get("source", "nws") {
        "nws" => ForecastSource::Nws,
        "last-value" => ForecastSource::LastValue,
        "oracle" => ForecastSource::Oracle,
        "static" => ForecastSource::StaticNominal,
        other => return Err(ArgError(format!("unknown source {other:?}")).into()),
    };

    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, warmup);
    let mut pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);
    pool.source = source;
    let agent = Coordinator::new(hat.clone(), user.clone());
    let decision = agent.decide(&pool)?;
    let report = apples::actuator::actuate(&tb.topo, &hat, decision.schedule(), warmup)?;

    println!(
        "Jacobi2D {n}x{n}, {iterations} iterations — {} candidates considered, {} rejected",
        decision.considered.len(),
        decision.rejected
    );
    if let Schedule::Stencil(s) = decision.schedule() {
        for part in &s.parts {
            let h = tb.topo.host(part.host)?;
            println!(
                "  {:>14}: {:>5} rows ({:>5.1}%)",
                h.spec.name,
                part.rows,
                part.rows as f64 / n as f64 * 100.0
            );
        }
    }
    println!(
        "predicted {:.2} s, actuated {:.2} s",
        decision.chosen().predicted_seconds,
        report.elapsed_seconds
    );
    Ok(())
}

/// `apples-cli compare`
pub fn compare(p: &Parsed) -> CmdResult {
    let tb = build_testbed(p)?;
    let n: usize = p.get_parsed("n", 2000)?;
    let iterations: usize = p.get_parsed("iterations", 100)?;
    let warmup = SimTime::from_secs(600);
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");

    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, warmup);
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);
    let apples = apples_apps::jacobi2d::apples_stencil_schedule(&pool)?;
    let a = simulate_spmd(&tb.topo, &apples.to_spmd_job(t, warmup))?;

    let ws_hosts = tb.workstations();
    let strip = static_strip(&tb.topo, n, iterations, &ws_hosts);
    let s = simulate_spmd(&tb.topo, &strip.to_spmd_job(t, warmup))?;
    let blocked = blocked_uniform(n, iterations, &ws_hosts);
    let b = simulate_spmd(&tb.topo, &blocked.to_spmd_job(t, warmup))?;

    let (a, s, b) = (
        a.makespan(warmup).as_secs_f64(),
        s.makespan(warmup).as_secs_f64(),
        b.makespan(warmup).as_secs_f64(),
    );
    println!("Jacobi2D {n}x{n}, {iterations} iterations (one trial):");
    println!("  AppLeS       {a:>9.2} s");
    println!("  static Strip {s:>9.2} s   ({:.2}x)", s / a);
    println!("  HPF Blocked  {b:>9.2} s   ({:.2}x)", b / a);
    Ok(())
}

/// `apples-cli forecast`
pub fn forecast(p: &Parsed) -> CmdResult {
    let tb = build_testbed(p)?;
    let host = HostId(p.get_parsed("host", 1usize)?);
    let until: u64 = p.get_parsed("until", 3600u64)?;
    let name = &tb.topo.host(host)?.spec.name;
    println!("NWS tracking {name} for {until} s:");
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    let key = ResourceKey::Cpu(host);
    let step = (until / 12).max(60);
    let mut t = step;
    println!(
        "{:>8}  {:>8}  {:>8}  {:>7}  predictor",
        "time s", "measured", "forecast", "err"
    );
    while t <= until {
        let now = SimTime::from_secs(t);
        ws.advance(&tb.topo, now);
        if let (Some(cur), Some(f)) = (ws.current(key), ws.forecast(key)) {
            println!(
                "{:>8}  {:>8.3}  {:>8.3}  {:>7.4}  {}",
                t, cur, f.value, f.error, f.method
            );
        }
        t += step;
    }
    Ok(())
}

/// `apples-cli react`
pub fn react(p: &Parsed) -> CmdResult {
    let seed: u64 = p.get_parsed("seed", 0u64)?;
    let unit: usize = p.get_parsed("unit", 0usize)?;
    let depth: usize = p.get_parsed("depth", 4usize)?;
    let tb = react3d::casa_testbed(seed)?;
    const HOUR: f64 = 3600.0;
    let c90 = react3d::single_site_run(&tb, tb.c90)?.as_secs_f64() / HOUR;
    let par = react3d::single_site_run(&tb, tb.paragon)?.as_secs_f64() / HOUR;
    println!("3D-REACT: single-site C90 {c90:.2} h, Paragon {par:.2} h");
    if unit > 0 {
        let run = react3d::distributed_run(&tb, unit, depth)?;
        println!(
            "distributed (unit {unit}, depth {depth}): {:.2} h",
            run.makespan(SimTime::ZERO).as_secs_f64() / HOUR
        );
    } else {
        for (u, secs) in
            react3d::sweep_pipeline_sizes(&tb, &[1, 2, 5, 10, 20, 40, 130, 520], depth)?
        {
            println!("  unit {u:>4}: {:.2} h", secs / HOUR);
        }
    }
    Ok(())
}

/// `apples-cli nile`
pub fn nile(p: &Parsed) -> CmdResult {
    let events: u64 = p.get_parsed("events", 150_000u64)?;
    let runs: usize = p.get_parsed("runs", 8usize)?;
    let seed: u64 = p.get_parsed("seed", 0u64)?;

    // A compact two-site setup: server behind a WAN, Alpha farm local.
    let mut b = metasim::net::TopologyBuilder::new();
    let exp = b.add_segment(metasim::net::LinkSpec::dedicated(
        "experiment",
        12.5,
        SimTime::from_micros(500),
    ));
    let lab = b.add_segment(metasim::net::LinkSpec::dedicated(
        "analysis",
        12.5,
        SimTime::from_micros(500),
    ));
    let wan = b.add_link(metasim::net::LinkSpec::dedicated(
        "wan",
        0.6,
        SimTime::from_millis(35),
    ));
    b.add_route(exp, lab, vec![wan])?;
    let server = b.add_host(metasim::host::HostSpec::dedicated(
        "event-store",
        25.0,
        4096.0,
        exp,
    ));
    let mut compute = Vec::new();
    for i in 0..3 {
        compute.push(b.add_host(metasim::host::HostSpec::dedicated(
            &format!("alpha-{i}"),
            40.0,
            256.0,
            lab,
        )));
    }
    let topo = b.instantiate(SimTime::from_secs(10_000_000), seed)?;

    let hat = cleo_analysis_hat(events);
    let user = UserSpec::default();
    let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
    let sm = SiteManager {
        runs,
        skim_mb_factor: 3.0,
    };
    let plan = sm.plan_campaign(&pool, &compute, server, compute[0])?;
    let measured = sm.run_campaign(&topo, &hat, &plan, server, compute[0], SimTime::ZERO)?;
    println!(
        "{events} events, {runs} run(s): Site Manager chose {} \
         (predicted {:.1} s vs {:.1} s; measured {:.1} s)",
        if plan.skim { "SKIM" } else { "REMOTE" },
        plan.predicted_seconds,
        plan.predicted_alternative_seconds,
        measured
    );
    Ok(())
}

/// `apples-cli resched`
pub fn resched(p: &Parsed) -> CmdResult {
    use apples::rescheduler::ReschedulingAgent;
    let n: usize = p.get_parsed("n", 1600)?;
    let iterations: usize = p.get_parsed("iterations", 600)?;
    let phase: usize = p.get_parsed("phase", 50)?;
    let seed: u64 = p.get_parsed("seed", 0u64)?;

    // Two host pairs that swap load regimes 60 s into the run.
    let mut b = metasim::net::TopologyBuilder::new();
    let seg = b.add_segment(metasim::net::LinkSpec::dedicated(
        "seg",
        12.5,
        SimTime::from_micros(500),
    ));
    for i in 0..2 {
        b.add_host(HostSpec::workstation(
            &format!("early-idle-{i}"),
            30.0,
            1024.0,
            seg,
            metasim::load::LoadModel::Trace(vec![
                (SimTime::ZERO, 0.95),
                (SimTime::from_secs(660), 0.1),
            ]),
        ));
        b.add_host(HostSpec::workstation(
            &format!("late-idle-{i}"),
            30.0,
            1024.0,
            seg,
            metasim::load::LoadModel::Trace(vec![
                (SimTime::ZERO, 0.1),
                (SimTime::from_secs(660), 0.95),
            ]),
        ));
    }
    let topo = b.instantiate(SimTime::from_secs(1_000_000), seed)?;
    let start = SimTime::from_secs(600);
    let hat = apples::hat::jacobi2d_hat(n, iterations);
    let user = UserSpec::default();

    let mut ws1 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws1.advance(&topo, start);
    let one_shot = Coordinator::new(hat.clone(), user.clone());
    let (_, one_shot_report) = one_shot.run(&topo, &ws1, start)?;

    let mut ws2 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    let mut adaptive = ReschedulingAgent::new(Coordinator::new(hat, user));
    adaptive.policy.phase_iterations = phase;
    let report = adaptive.run_stencil(&topo, &mut ws2, start)?;

    println!("Jacobi2D {n}x{n}, {iterations} iterations; load regime flips at t = 660 s");
    println!("one-shot:     {:>8.1} s", one_shot_report.elapsed_seconds);
    println!(
        "rescheduling: {:>8.1} s  ({} migration(s), phase = {phase} iterations)",
        report.elapsed_seconds, report.migrations
    );
    println!(
        "speedup: {:.2}x",
        one_shot_report.elapsed_seconds / report.elapsed_seconds
    );
    Ok(())
}

/// `apples-cli advise`
pub fn advise_cmd(p: &Parsed) -> CmdResult {
    use apples::advisor::advise;
    use metasim::host::SharingPolicy;
    let wait: f64 = p.get_parsed("wait", 900.0f64)?;
    let avail: f64 = p.get_parsed("avail", 0.35f64)?;
    let n: usize = p.get_parsed("n", 1200)?;
    let iterations: usize = p.get_parsed("iterations", 800)?;

    let mut b = metasim::net::TopologyBuilder::new();
    let seg = b.add_segment(metasim::net::LinkSpec::dedicated(
        "seg",
        20.0,
        SimTime::from_micros(200),
    ));
    for i in 0..2 {
        let mut spec = HostSpec::dedicated(&format!("batch-{i}"), 40.0, 1024.0, seg);
        spec.sharing = SharingPolicy::SpaceShared {
            wait: SimTime::from_secs_f64(wait),
        };
        b.add_host(spec);
    }
    for i in 0..2 {
        b.add_host(HostSpec::workstation(
            &format!("shared-{i}"),
            40.0,
            1024.0,
            seg,
            metasim::load::LoadModel::Constant(avail),
        ));
    }
    let topo = b.instantiate(SimTime::from_secs(1_000_000), 0)?;

    let hat = apples::hat::jacobi2d_hat(n, iterations);
    let user = UserSpec::default();
    let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
    pool.source = ForecastSource::Oracle;
    let advice = advise(
        &pool,
        &[vec![HostId(0), HostId(1)], vec![HostId(2), HostId(3)]],
    )?;
    println!(
        "Jacobi2D {n}x{n} x{iterations}: queue wait {wait:.0} s vs shared pool at {:.0}%",
        avail * 100.0
    );
    for o in &advice.options {
        println!(
            "  wait {:>6.0} s -> complete in {:>9.1} s",
            o.wait_seconds, o.completion_seconds
        );
    }
    let chosen = advice.chosen();
    println!(
        "recommendation: {}",
        if chosen.wait_seconds > 0.0 {
            "WAIT for the dedicated partition"
        } else {
            "RUN NOW on the shared pool"
        }
    );
    Ok(())
}

/// `apples-cli whatif`
pub fn whatif(p: &Parsed) -> CmdResult {
    use apples::whatif::{evaluate, standard_menu};
    let tb = build_testbed(p)?;
    let n: usize = p.get_parsed("n", 1600)?;
    let iterations: usize = p.get_parsed("iterations", 60)?;
    let now = SimTime::from_secs(600);
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, now);
    let (hat, user) = jacobi_context(n, iterations);
    let menu = standard_menu(&tb.topo);
    let report = evaluate(&tb.topo, &ws, &hat, &user, now, &menu)?;
    println!(
        "Jacobi2D {n}x{n} x{iterations}: baseline {:.2} s; top upgrades:",
        report.baseline_seconds
    );
    for r in report.results.iter().take(8) {
        println!(
            "  {:>34}: {:>7.2} s ({:.2}x)",
            r.upgrade.describe(&tb.topo),
            r.upgraded_seconds,
            r.speedup
        );
    }
    Ok(())
}

/// Build the service- and workload-side configs for `grid` and
/// `validate` from the shared flag set. Deliberately does *not*
/// reject bad knob values here: both commands route them through
/// [`apples_grid::validate_config`] so every malformed class is
/// reported as a typed diagnostic rather than an ad-hoc parse error.
fn grid_setup(
    p: &Parsed,
) -> Result<(apples_grid::GridConfig, apples_grid::WorkloadConfig), Box<dyn std::error::Error>> {
    use apples_grid::workload::{ArrivalProcess, JobMix, RetryPolicy, WorkloadConfig};
    use apples_grid::{FaultInjection, GridConfig, Regime};
    use metasim::FaultModel;
    let rate: f64 = p.get_parsed("rate", 0.02)?;
    let duration: f64 = p.get_parsed("duration", 3600.0)?;
    let seed: u64 = p.get_parsed("seed", 1996)?;
    let horizon: f64 = p.get_parsed("horizon", 400_000.0)?;
    let max_in_flight: usize = p.get_parsed("max-in-flight", usize::MAX)?;
    let fault_rate: f64 = p.get_parsed("fault-rate", 0.0)?;
    let link_fault_rate: f64 = p.get_parsed("link-fault-rate", 0.0)?;
    let mean_outage: f64 = p.get_parsed("mean-outage", 600.0)?;
    let permanent: f64 = p.get_parsed("permanent", 0.25)?;
    let max_attempts: u32 = p.get_parsed("max-attempts", 1)?;
    let backoff: f64 = p.get_parsed("backoff", 30.0)?;
    // Build a fault model as soon as any fault knob is touched, even
    // with zero rates, so the validator sees (and can reject) every
    // given value instead of silently discarding an inert model.
    let fault_knob_given = ["fault-rate", "link-fault-rate", "mean-outage", "permanent"]
        .iter()
        .any(|k| !p.get(k, "").is_empty());
    let faults = if fault_knob_given {
        FaultInjection::Random(FaultModel {
            host_crashes_per_hour: fault_rate,
            link_outages_per_hour: link_fault_rate,
            mean_outage: SimTime::from_secs_f64(mean_outage),
            permanent_fraction: permanent,
        })
    } else {
        FaultInjection::None
    };
    let topo_raw = p.get("topo", "");
    let topo = if topo_raw.is_empty() {
        None
    } else {
        Some(metasim::topogen::TopoSpec::parse(topo_raw)?)
    };
    let cfg = GridConfig {
        profile: profile_of(p)?,
        with_sp2: p.switch("sp2"),
        topo,
        seed,
        horizon: SimTime::from_secs_f64(horizon),
        regime: if p.switch("blind") {
            Regime::Blind
        } else {
            Regime::Aware
        },
        max_in_flight,
        faults,
        ..GridConfig::default()
    };
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: rate },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs_f64(duration),
        seed,
        retry: RetryPolicy {
            max_attempts,
            base_backoff: SimTime::from_secs_f64(backoff),
            factor: 2.0,
        },
    };
    Ok((cfg, workload))
}

/// `apples-cli validate` — static pre-run check of a grid
/// configuration: print every typed diagnostic, exit nonzero if any.
pub fn validate(p: &Parsed) -> CmdResult {
    let (cfg, workload) = grid_setup(p)?;
    let diags = apples_grid::validate_config(&cfg, Some(&workload));
    if diags.is_empty() {
        println!(
            "configuration OK: {} profile{}, horizon {}, seed {}",
            p.get("profile", "moderate"),
            if cfg.with_sp2 { " with SP-2 nodes" } else { "" },
            cfg.horizon,
            cfg.seed,
        );
        return Ok(());
    }
    for d in &diags {
        println!("{d}");
    }
    Err(format!("{} configuration issue(s) found", diags.len()).into())
}

/// Parse the `--regime` flag shared by `grid`, `metrics` and `race`.
fn sched_regime_of(p: &Parsed) -> Result<apples_grid::SchedRegime, ArgError> {
    let raw = p.get("regime", "selfish");
    apples_grid::SchedRegime::parse(raw).ok_or_else(|| {
        ArgError(format!(
            "unknown scheduling regime {raw:?} (selfish | batch | fractional)"
        ))
    })
}

/// `apples-cli grid`
pub fn grid(p: &Parsed) -> CmdResult {
    use apples_grid::workload::ArrivalProcess;
    use apples_grid::{GridService, Regime};
    let (cfg, workload) = grid_setup(p)?;
    let sched = sched_regime_of(p)?;
    let ArrivalProcess::Poisson { rate_hz: rate } = workload.arrivals else {
        return Err(ArgError("grid streams use Poisson arrivals".into()).into());
    };
    let duration = workload.duration.as_secs_f64();
    let seed = cfg.seed;
    let max_in_flight = cfg.max_in_flight;
    let service = GridService::new(cfg)?;
    let cfg = service.config();
    let trace_path = p.get("trace", "");
    let metrics_path = p.get("metrics", "");
    let out = if trace_path.is_empty() && metrics_path.is_empty() {
        service.run_regime(sched, &workload)?
    } else {
        // Fan the one event stream out to whichever consumers were
        // asked for: a JSONL writer (--trace) and/or a metrics
        // registry (--metrics).
        let mut writer = if trace_path.is_empty() {
            None
        } else {
            let file = std::fs::File::create(trace_path)
                .map_err(|e| format!("cannot create {trace_path}: {e}"))?;
            Some(metasim::simtrace::WriterSink::new(std::io::BufWriter::new(
                file,
            )))
        };
        let mut metrics = if metrics_path.is_empty() {
            None
        } else {
            Some(obsv::MetricsSink::new())
        };
        let out = {
            let mut fan = obsv::FanoutSink::new();
            if let Some(w) = writer.as_mut() {
                fan.push(w);
            }
            if let Some(m) = metrics.as_mut() {
                fan.push(m);
            }
            service.run_regime_with_sink(sched, &workload, &mut fan)
        };
        if let Some(mut sink) = writer {
            if let Some(e) = sink.take_error() {
                return Err(format!("writing {trace_path}: {e}").into());
            }
            sink.into_inner()
                .into_inner()
                .map_err(|e| format!("flushing {trace_path}: {e}"))?;
        }
        if let Some(sink) = metrics {
            std::fs::write(metrics_path, sink.registry().expose())
                .map_err(|e| format!("cannot write {metrics_path}: {e}"))?;
        }
        out?
    };

    if p.switch("json") {
        println!("{}", out.fleet.to_json());
        return Ok(());
    }
    if p.switch("csv") {
        println!("{}", apples_grid::FleetMetrics::csv_header());
        println!("{}", out.fleet.csv_row(&format!("seed-{seed}")));
        println!();
        println!("{}", apples_grid::JobRecord::csv_header());
        for r in &out.records {
            println!("{}", r.csv_row());
        }
        return Ok(());
    }

    println!(
        "job stream: Poisson {rate}/s for {duration} s, seed {seed} \
         ({sched} scheduling, {} info, {} in-flight limit)\n",
        if cfg.regime == Regime::Blind {
            "blind"
        } else {
            "aware"
        },
        if max_in_flight == usize::MAX {
            "no".to_string()
        } else {
            max_in_flight.to_string()
        },
    );
    let f = &out.fleet;
    println!("jobs admitted     {:>10}", f.jobs);
    println!("jobs completed    {:>10}", f.jobs_completed);
    println!("jobs failed       {:>10}", f.jobs_failed);
    println!("jobs rescheduled  {:>10}", f.jobs_rescheduled);
    println!("total attempts    {:>10}", f.total_attempts);
    println!("throughput /h     {:>10.2}", f.throughput_per_hour);
    println!("goodput           {:>10.3}", f.goodput);
    println!("mean wait s       {:>10.2}", f.mean_wait_seconds);
    println!("mean exec s       {:>10.2}", f.mean_exec_seconds);
    println!("mean slowdown     {:>10.3}", f.mean_slowdown);
    println!("latency p50 s     {:>10.2}", f.latency_p50);
    println!("latency p95 s     {:>10.2}", f.latency_p95);
    println!("latency p99 s     {:>10.2}", f.latency_p99);
    println!("\nper-host demand utilization:");
    for (name, u) in &f.host_utilization {
        println!("  {name:>14}  {u:>6.3}");
    }
    Ok(())
}

/// `apples-cli race` — T-RACE: race every scheduling regime (selfish
/// AppLeS agents, centralized EASY batch, fractional sharing) on
/// identical seeded streams across one or more topologies.
pub fn race(p: &Parsed) -> CmdResult {
    use apples_bench::regime_race::{
        render, render_report, run_race_with, split_topo_list, RaceConfig,
    };
    let defaults = RaceConfig::default();
    let rate_hz: f64 = p.get_parsed("rate", defaults.rate_hz)?;
    let duration_secs: f64 = p.get_parsed("duration", defaults.duration_secs)?;
    let seed: u64 = p.get_parsed("seed", defaults.seed)?;
    let crash_rate: f64 = p.get_parsed("fault-rate", defaults.crash_rate)?;
    let mean_outage_secs: f64 = p.get_parsed("mean-outage", defaults.mean_outage_secs)?;
    let max_attempts: u32 = p.get_parsed("max-attempts", defaults.max_attempts)?;
    let topo_raw = p.get("topo", "");
    let topos = if topo_raw.is_empty() {
        defaults.topos
    } else {
        split_topo_list(topo_raw)
    };
    if rate_hz <= 0.0 || duration_secs <= 0.0 {
        return Err(ArgError("race needs a positive rate and duration".into()).into());
    }
    if crash_rate < 0.0 || mean_outage_secs <= 0.0 || max_attempts == 0 {
        return Err(ArgError("race fault and retry knobs must be sane".into()).into());
    }
    let cfg = RaceConfig {
        topos,
        rate_hz,
        duration_secs,
        seed,
        crash_rate,
        mean_outage_secs,
        max_attempts,
    };
    println!(
        "T-RACE: Poisson arrivals at {rate_hz}/s for {duration_secs} s, seed {seed}, \
         crashes {crash_rate}/host-hour\n\
         (every regime faces the same realized stream and fault schedule)\n"
    );
    // A full race is minutes of silent wall clock; narrate each leg
    // on stderr so redirected stdout stays clean. --quiet disables it.
    let quiet = p.switch("quiet");
    let legs = cfg.topos.len() * apples_grid::SchedRegime::ALL.len();
    let mut done = 0usize;
    let trials = run_race_with(&cfg, &mut |topo, regime| {
        done += 1;
        if !quiet {
            eprintln!("race [{done}/{legs}] {topo}: {} regime...", regime.name());
        }
    })?;
    println!("{}", render(&trials));
    let report_path = p.get("report", "");
    if !report_path.is_empty() {
        std::fs::write(report_path, render_report(&cfg, &trials))
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
        if !quiet {
            eprintln!("wrote {report_path}");
        }
    }
    Ok(())
}

/// `apples-cli trace summary FILE` / `apples-cli trace diff A B`.
///
/// Takes the raw (positional) arguments after `trace` and returns the
/// process exit code: 0 on success / identical traces, 1 when `diff`
/// finds a divergence, 2 on usage or I/O errors.
pub fn trace(args: &[String]) -> i32 {
    use metasim::simtrace::{first_divergence, TraceSummary};
    let read = |path: &str| -> Result<String, i32> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: cannot read {path}: {e}");
            2
        })
    };
    match args {
        [sub, file] if sub == "summary" => {
            let text = match read(file) {
                Ok(t) => t,
                Err(code) => return code,
            };
            print!("{}", TraceSummary::from_jsonl(&text).render());
            0
        }
        [sub, a, b] if sub == "diff" => {
            let (ta, tb) = match (read(a), read(b)) {
                (Ok(ta), Ok(tb)) => (ta, tb),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            match first_divergence(&ta, &tb) {
                None => {
                    println!("identical: {} events", ta.lines().count());
                    0
                }
                Some(d) => {
                    println!("divergence at line {}:", d.line);
                    println!("  {a}: {}", d.left.as_deref().unwrap_or("<absent>"));
                    println!("  {b}: {}", d.right.as_deref().unwrap_or("<absent>"));
                    1
                }
            }
        }
        _ => {
            eprintln!("usage: apples-cli trace summary FILE | trace diff A B");
            2
        }
    }
}

/// `apples-cli prof FILE [--mode folded|gantt|table] [--width N]` —
/// time-attribution profile of a JSONL trace.
///
/// Positional like `trace`; returns the process exit code (0 on
/// success, 2 on usage or I/O errors).
pub fn prof(args: &[String]) -> i32 {
    let mut file: Option<&str> = None;
    let mut mode = "folded";
    let mut width = 72usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next() {
                Some(m) => mode = m,
                None => {
                    eprintln!("error: --mode needs a value (folded|gantt|table)");
                    return 2;
                }
            },
            "--width" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => width = w,
                None => {
                    eprintln!("error: --width needs an integer value");
                    return 2;
                }
            },
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return 2;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("usage: apples-cli prof FILE [--mode folded|gantt|table] [--width N]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let profile = obsv::Profile::from_jsonl(&text);
    match mode {
        "folded" => print!("{}", profile.folded()),
        "gantt" => print!("{}", profile.gantt(width)),
        "table" => print!("{}", profile.table()),
        other => {
            eprintln!("error: unknown mode {other:?} (folded|gantt|table)");
            return 2;
        }
    }
    0
}

/// `apples-cli spans FILE [--mode tree|jsonl|composition]` — fold a
/// JSONL trace into causal span trees (job → attempt → phase, with
/// retry/revocation/backfill cause edges and per-job critical paths).
///
/// Positional like `prof`; returns the process exit code (0 on
/// success, 2 on usage or I/O errors). `tree` renders the indented
/// trees plus the composition summary, `jsonl` emits one byte-stable
/// JSON object per job, `composition` only the critical-path
/// composition rollup.
pub fn spans(args: &[String]) -> i32 {
    let mut file: Option<&str> = None;
    let mut mode = "tree";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => match it.next() {
                Some(m) => mode = m,
                None => {
                    eprintln!("error: --mode needs a value (tree|jsonl|composition)");
                    return 2;
                }
            },
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return 2;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("usage: apples-cli spans FILE [--mode tree|jsonl|composition]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let tree = obsv::SpanTree::from_jsonl(&text);
    if tree.skipped_lines > 0 {
        eprintln!("note: skipped {} malformed line(s)", tree.skipped_lines);
    }
    match mode {
        "tree" => print!("{}", tree.render()),
        "jsonl" => print!("{}", tree.to_jsonl()),
        "composition" => println!("{}", tree.composition().render()),
        other => {
            eprintln!("error: unknown mode {other:?} (tree|jsonl|composition)");
            return 2;
        }
    }
    0
}

/// `apples-cli timeseries FILE [--window SECS | --aligned] [--jsonl]`
/// — stream a JSONL trace through the windowed time-series engine.
///
/// Positional like `prof`; exit 0 on success, 2 on usage or I/O
/// errors. Default is 60 s fixed windows as a table; `--aligned`
/// switches to event-aligned (one row per distinct event time) and
/// `--jsonl` emits the byte-stable JSONL export instead.
pub fn timeseries(args: &[String]) -> i32 {
    use metasim::simtrace::{EventSink, TraceEvent};
    let mut file: Option<&str> = None;
    let mut window = 60.0f64;
    let mut aligned = false;
    let mut jsonl = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--window" => match it.next().and_then(|w| w.parse::<f64>().ok()) {
                Some(w) if w > 0.0 => window = w,
                _ => {
                    eprintln!("error: --window needs a positive seconds value");
                    return 2;
                }
            },
            "--aligned" => aligned = true,
            "--jsonl" => jsonl = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                return 2;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("usage: apples-cli timeseries FILE [--window SECS | --aligned] [--jsonl]");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let (events, skipped) = TraceEvent::from_jsonl(&text);
    let mut sink = if aligned {
        obsv::TimeSeriesSink::new(obsv::WindowMode::EventAligned)
    } else {
        obsv::TimeSeriesSink::fixed_seconds(window)
    };
    for e in events {
        sink.record(e);
    }
    let series = sink.finalize();
    if jsonl {
        print!("{}", series.to_jsonl());
    } else {
        print!("{}", series.render());
    }
    if skipped > 0 {
        eprintln!("note: skipped {skipped} malformed line(s)");
    }
    0
}

/// `apples-cli snapshot-diff A B` — compare two Prometheus text
/// snapshots series by series. Exit 0 when they agree, 1 on any
/// difference, 2 on I/O or usage errors (mirrors `trace diff`).
pub fn snapshot_diff(args: &[String]) -> i32 {
    let [a, b] = args else {
        eprintln!("usage: apples-cli snapshot-diff A B");
        return 2;
    };
    let read = |path: &str| -> Result<String, i32> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error: cannot read {path}: {e}");
            2
        })
    };
    let (ta, tb) = match (read(a), read(b)) {
        (Ok(ta), Ok(tb)) => (ta, tb),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let deltas = obsv::snapshot_diff(&ta, &tb);
    if deltas.is_empty() {
        println!(
            "identical: {} series",
            obsv::Snapshot::parse(&ta).series.len()
        );
        return 0;
    }
    println!("{} differing series:", deltas.len());
    for d in &deltas {
        println!("  {}", d.render());
    }
    1
}

/// `apples-cli lint` — run the simlint workspace analyzer. Thin
/// wrapper over [`simlint::driver::run`], the same driver behind the
/// standalone `simlint` binary, so flags and exit codes are identical
/// (0 clean, 1 unallowed/denied findings, 2 usage or I/O errors).
pub fn lint(args: &[String]) -> i32 {
    i32::from(simlint::driver::run(args.iter().cloned()))
}

/// `apples-cli metrics` — run a seeded grid scenario with a
/// [`obsv::MetricsSink`] attached and dump the Prometheus exposition
/// (to stdout, or `--out FILE`). Same scenario flags as `grid`.
pub fn metrics(p: &Parsed) -> CmdResult {
    use apples_grid::GridService;
    let (cfg, workload) = grid_setup(p)?;
    let sched = sched_regime_of(p)?;
    let service = GridService::new(cfg)?;
    let mut sink = obsv::MetricsSink::new();
    service.run_regime_with_sink(sched, &workload, &mut sink)?;
    let exposition = sink.registry().expose();
    let out_path = p.get("out", "");
    if out_path.is_empty() {
        print!("{exposition}");
    } else {
        std::fs::write(out_path, exposition)
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    }
    Ok(())
}

/// `apples-cli bench` — the T-SCALE events/sec sweep: incremental
/// dirty-set transfer engine vs the full-recompute baseline on a
/// seeded synthetic fleet. `--check FILE` validates an existing
/// results document instead of running the sweep.
pub fn bench(p: &Parsed) -> CmdResult {
    use apples_bench::event_engine::{
        compare_with_history, history_line, parse_history, parse_results, run_sweep,
        run_topo_sweep, to_json, to_table, DEFAULT_SWEEP, DEFAULT_TOPO_SWEEP,
    };

    // The trajectory file rides next to the results document:
    // `BENCH_event_engine.json` → `BENCH_event_engine.history.jsonl`.
    fn history_path(out: &str) -> String {
        match out.strip_suffix(".json") {
            Some(stem) => format!("{stem}.history.jsonl"),
            None => format!("{out}.history.jsonl"),
        }
    }

    let check = p.get("check", "");
    if !check.is_empty() {
        let text =
            std::fs::read_to_string(check).map_err(|e| format!("cannot read {check}: {e}"))?;
        let points = parse_results(&text).map_err(|e| format!("{check}: {e}"))?;
        println!("{check}: {} valid sweep point(s)", points.len());
        let hist = history_path(check);
        match std::fs::read_to_string(&hist) {
            Ok(htext) => {
                let runs = parse_history(&htext).map_err(|e| format!("{hist}: {e}"))?;
                match runs.last() {
                    Some(last) => {
                        let drift = compare_with_history(&points, last)
                            .map_err(|e| format!("{check} vs {hist}: {e}"))?;
                        println!("vs last of {} history run(s) in {hist}:", runs.len());
                        for line in drift {
                            println!("  {line}");
                        }
                    }
                    None => println!("{hist}: empty history, nothing to compare"),
                }
            }
            Err(_) => println!("{hist}: no history file, nothing to compare"),
        }
        return Ok(());
    }

    fn list(raw: &str, what: &str) -> Result<Vec<usize>, ArgError> {
        raw.split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| ArgError(format!("--{what}: cannot parse {s:?}")))
            })
            .collect()
    }
    let seed: u64 = p.get_parsed("seed", 42)?;
    let hosts_raw = p.get("hosts", "");
    let topo_raw = p.get("topo", "");
    // With neither --hosts nor --topo, run the default fleet sweep
    // plus the default generated-topology point.
    let defaults = hosts_raw.is_empty() && topo_raw.is_empty();
    let sweep: Vec<(usize, usize)> = if defaults {
        DEFAULT_SWEEP.to_vec()
    } else if hosts_raw.is_empty() {
        Vec::new()
    } else {
        let hosts = list(hosts_raw, "hosts")?;
        let jobs_raw = p.get("jobs", "");
        let jobs = if jobs_raw.is_empty() {
            vec![1000; hosts.len()]
        } else {
            let j = list(jobs_raw, "jobs")?;
            if j.len() == 1 {
                vec![j[0]; hosts.len()]
            } else if j.len() == hosts.len() {
                j
            } else {
                return Err(
                    ArgError("--jobs must have 1 value or as many as --hosts".into()).into(),
                );
            }
        };
        hosts.into_iter().zip(jobs).collect()
    };
    let topo_jobs: usize = p
        .get("jobs", "")
        .split(',')
        .next()
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| ArgError(format!("--jobs: cannot parse {s:?}")))
        })
        .transpose()?
        .unwrap_or(10_000);
    let topo_sweep: Vec<(&str, usize)> = if defaults {
        DEFAULT_TOPO_SWEEP.to_vec()
    } else if topo_raw.is_empty() {
        Vec::new()
    } else {
        vec![(topo_raw, topo_jobs)]
    };

    let mut points = run_sweep(&sweep, seed)?;
    points.extend(run_topo_sweep(&topo_sweep, seed)?);
    let doc = to_json(&points);
    if p.switch("json") {
        print!("{doc}");
    } else {
        print!("{}", to_table(&points));
    }
    let out = p.get("out", "BENCH_event_engine.json");
    std::fs::write(out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {out}");
    // Append this run to the trajectory so `--check` (and a human with
    // `tail`) can see how the machine's numbers move over time.
    let hist = history_path(out);
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&hist)
        .map_err(|e| format!("cannot open {hist}: {e}"))?;
    writeln!(f, "{}", history_line(&points)).map_err(|e| format!("cannot append {hist}: {e}"))?;
    eprintln!("appended {hist}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn parsed(words: &[&str]) -> Parsed {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Parsed::parse(
            &args,
            &[
                "n",
                "iterations",
                "profile",
                "seed",
                "source",
                "metric",
                "max-hosts",
                "warmup",
                "host",
                "until",
                "unit",
                "depth",
                "events",
                "runs",
                "phase",
                "wait",
                "avail",
                "rate",
                "duration",
                "max-in-flight",
                "fault-rate",
                "link-fault-rate",
                "mean-outage",
                "permanent",
                "max-attempts",
                "backoff",
                "horizon",
                "trace",
                "topo",
                "regime",
                "out",
                "check",
                "report",
            ],
            &["sp2", "csv", "json", "blind", "quiet"],
        )
        .expect("parse")
    }

    #[test]
    fn testbed_command_runs() {
        assert!(testbed(&parsed(&["testbed", "--sp2"])).is_ok());
    }

    #[test]
    fn schedule_command_runs_small() {
        assert!(schedule(&parsed(&["schedule", "--n", "600", "--iterations", "10"])).is_ok());
    }

    #[test]
    fn schedule_rejects_bad_metric_and_source() {
        assert!(schedule(&parsed(&["schedule", "--metric", "nonsense"])).is_err());
        assert!(schedule(&parsed(&["schedule", "--source", "nonsense"])).is_err());
    }

    #[test]
    fn schedule_accepts_cost_metric() {
        assert!(schedule(&parsed(&[
            "schedule",
            "--n",
            "600",
            "--iterations",
            "5",
            "--metric",
            "cost:2.5"
        ]))
        .is_ok());
    }

    #[test]
    fn compare_command_runs_small() {
        assert!(compare(&parsed(&["compare", "--n", "600", "--iterations", "10"])).is_ok());
    }

    #[test]
    fn forecast_command_runs() {
        assert!(forecast(&parsed(&["forecast", "--host", "1", "--until", "900"])).is_ok());
    }

    #[test]
    fn react_command_single_unit_runs() {
        assert!(react(&parsed(&["react", "--unit", "10"])).is_ok());
    }

    #[test]
    fn nile_command_runs_small() {
        assert!(nile(&parsed(&["nile", "--events", "5000", "--runs", "2"])).is_ok());
    }

    #[test]
    fn advise_command_runs() {
        assert!(advise_cmd(&parsed(&[
            "advise",
            "--wait",
            "60",
            "--n",
            "600",
            "--iterations",
            "100"
        ]))
        .is_ok());
    }

    #[test]
    fn bad_profile_is_an_error() {
        assert!(testbed(&parsed(&["testbed", "--profile", "imaginary"])).is_err());
    }

    #[test]
    fn grid_command_runs_small() {
        assert!(grid(&parsed(&[
            "grid",
            "--rate",
            "0.005",
            "--duration",
            "900",
            "--profile",
            "light"
        ]))
        .is_ok());
    }

    #[test]
    fn grid_csv_and_json_run() {
        assert!(grid(&parsed(&[
            "grid",
            "--rate",
            "0.005",
            "--duration",
            "900",
            "--profile",
            "light",
            "--csv"
        ]))
        .is_ok());
        assert!(grid(&parsed(&[
            "grid",
            "--rate",
            "0.005",
            "--duration",
            "900",
            "--profile",
            "light",
            "--json"
        ]))
        .is_ok());
    }

    #[test]
    fn grid_rejects_nonpositive_rate() {
        assert!(grid(&parsed(&["grid", "--rate", "0"])).is_err());
    }

    #[test]
    fn grid_runs_every_scheduling_regime() {
        for regime in ["selfish", "batch", "fractional"] {
            assert!(
                grid(&parsed(&[
                    "grid",
                    "--rate",
                    "0.005",
                    "--duration",
                    "900",
                    "--profile",
                    "light",
                    "--regime",
                    regime
                ]))
                .is_ok(),
                "regime {regime} failed"
            );
        }
    }

    #[test]
    fn grid_rejects_unknown_regime() {
        assert!(grid(&parsed(&["grid", "--regime", "gang"])).is_err());
    }

    #[test]
    fn race_rejects_bad_knobs() {
        assert!(race(&parsed(&["race", "--rate", "0"])).is_err());
        assert!(race(&parsed(&["race", "--max-attempts", "0"])).is_err());
        assert!(race(&parsed(&["race", "--topo", "not-a-family"])).is_err());
    }

    #[test]
    fn grid_fault_flags_run() {
        assert!(grid(&parsed(&[
            "grid",
            "--rate",
            "0.005",
            "--duration",
            "600",
            "--profile",
            "light",
            "--fault-rate",
            "2.0",
            "--max-attempts",
            "3",
            "--backoff",
            "15",
        ]))
        .is_ok());
    }

    #[test]
    fn grid_rejects_bad_fault_knobs() {
        assert!(grid(&parsed(&["grid", "--fault-rate", "-1"])).is_err());
        assert!(grid(&parsed(&["grid", "--mean-outage", "0"])).is_err());
    }

    #[test]
    fn validate_accepts_shipped_configs() {
        assert!(validate(&parsed(&["validate"])).is_ok());
        assert!(validate(&parsed(&["validate", "--sp2"])).is_ok());
        assert!(validate(&parsed(&["validate", "--fault-rate", "0.5"])).is_ok());
    }

    #[test]
    fn validate_accepts_generated_topologies() {
        assert!(validate(&parsed(&["validate", "--topo", "star:hosts=16,per_seg=4"])).is_ok());
        assert!(validate(&parsed(&[
            "validate",
            "--topo",
            "clusters:clusters=2,segs=2,hosts=2"
        ]))
        .is_ok());
    }

    #[test]
    fn validate_rejects_bad_topo_spec() {
        assert!(validate(&parsed(&["validate", "--topo", "ring:hosts=9"])).is_err());
    }

    #[test]
    fn grid_runs_on_a_generated_topology() {
        assert!(grid(&parsed(&[
            "grid",
            "--rate",
            "0.003",
            "--duration",
            "600",
            "--profile",
            "light",
            "--topo",
            "star:hosts=12,per_seg=4",
        ]))
        .is_ok());
    }

    #[test]
    fn validate_rejects_each_malformed_class() {
        for bad in [
            ["validate", "--rate", "0"],
            ["validate", "--max-attempts", "0"],
            ["validate", "--max-in-flight", "0"],
            ["validate", "--permanent", "1.5"],
            ["validate", "--fault-rate", "-1"],
            ["validate", "--horizon", "0"],
            ["validate", "--mean-outage", "0"],
        ] {
            assert!(validate(&parsed(&bad)).is_err(), "{bad:?} should fail");
        }
    }
}
