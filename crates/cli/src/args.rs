//! A minimal, dependency-free argument parser.
//!
//! Grammar: `apples-cli <command> [--flag value]... [--switch]...`.
//! Flags may be given as `--key value` or `--key=value`. Unknown flags
//! are an error (catches typos early).

use std::collections::BTreeMap;

/// Parsed command line: the subcommand and its flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parse raw arguments (without the program name), validating
    /// flags against the allowed set. Switches (boolean flags) are
    /// stored with the value `"true"`.
    pub fn parse(
        args: &[String],
        allowed_flags: &[&str],
        switches: &[&str],
    ) -> Result<Parsed, ArgError> {
        let mut iter = args.iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?
            .clone();
        if command.starts_with('-') {
            return Err(ArgError(format!("expected a command, got flag {command}")));
        }
        let mut flags = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let Some(stripped) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {arg:?}")));
            };
            let (key, inline_value) = match stripped.split_once('=') {
                Some((k, v)) => (k.to_string(), Some(v.to_string())),
                None => (stripped.to_string(), None),
            };
            if switches.contains(&key.as_str()) {
                if let Some(v) = inline_value {
                    return Err(ArgError(format!("--{key} takes no value, got {v:?}")));
                }
                flags.insert(key, "true".into());
            } else if allowed_flags.contains(&key.as_str()) {
                let value = match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?
                        .clone(),
                };
                flags.insert(key, value);
            } else {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(Parsed { command, flags })
    }

    /// A string flag, or the default.
    pub fn get<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// A typed flag, or the default; error on unparsable values.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {raw:?}"))),
        }
    }

    /// Whether a switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.flags.get(key).map(|v| v == "true").unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Parsed, ArgError> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Parsed::parse(&args, &["n", "seed", "profile"], &["sp2"])
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse(&["schedule", "--n", "2000", "--seed=7", "--sp2"]).unwrap();
        assert_eq!(p.command, "schedule");
        assert_eq!(p.get("n", "0"), "2000");
        assert_eq!(p.get_parsed::<u64>("seed", 0).unwrap(), 7);
        assert!(p.switch("sp2"));
        assert!(!p.switch("other"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = parse(&["testbed"]).unwrap();
        assert_eq!(p.get("profile", "moderate"), "moderate");
        assert_eq!(p.get_parsed::<usize>("n", 1000).unwrap(), 1000);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(&["schedule", "--bogus", "1"]).unwrap_err();
        assert!(err.0.contains("unknown flag"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&["schedule", "--n"]).unwrap_err();
        assert!(err.0.contains("needs a value"));
    }

    #[test]
    fn switch_with_value_is_an_error() {
        let err = parse(&["schedule", "--sp2=yes"]).unwrap_err();
        assert!(err.0.contains("takes no value"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--n", "5"]).is_err());
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let p = parse(&["schedule", "--n", "abc"]).unwrap();
        assert!(p.get_parsed::<usize>("n", 0).is_err());
    }
}
