//! `apples-cli` — drive the AppLeS reproduction from the command line.
//!
//! ```text
//! apples-cli testbed   [--profile P] [--seed N] [--sp2]
//! apples-cli schedule  [--n N] [--iterations K] [--profile P] [--seed N]
//!                      [--source nws|last-value|oracle|static]
//!                      [--metric time|speedup|cost:<rate>]
//!                      [--max-hosts K] [--sp2] [--warmup SECS]
//! apples-cli compare   [--n N] [--iterations K] [--profile P] [--seed N]
//! apples-cli forecast  [--host I] [--until SECS] [--profile P] [--seed N]
//! apples-cli react     [--unit U] [--depth D] [--seed N]
//! apples-cli nile      [--events E] [--runs R] [--seed N]
//! ```

mod args;
mod commands;

use args::Parsed;

const USAGE: &str = "\
apples-cli — application-level scheduling on a simulated metacomputer

USAGE:
  apples-cli testbed   [--profile P] [--seed N] [--sp2]
      Print the Figure 2 SDSC/PCL testbed.
  apples-cli schedule  [--n N] [--iterations K] [--profile P] [--seed N]
                       [--source nws|last-value|oracle|static]
                       [--metric time|speedup|cost:<rate>]
                       [--max-hosts K] [--sp2] [--warmup SECS]
      Run an AppLeS agent on a Jacobi2D job and actuate its decision.
  apples-cli compare   [--n N] [--iterations K] [--profile P] [--seed N]
      AppLeS vs static Strip vs HPF Blocked, back-to-back (Figure 5 trial).
  apples-cli forecast  [--host I] [--until SECS] [--profile P] [--seed N]
      Watch the Network Weather Service track one host.
  apples-cli react     [--unit U] [--depth D] [--seed N]
      The 3D-REACT pipeline on the CASA testbed (unit 0 sweeps sizes).
  apples-cli nile      [--events E] [--runs R] [--seed N]
      The CLEO/NILE Site Manager's skim-vs-remote decision.
  apples-cli resched   [--n N] [--iterations K] [--phase P] [--seed N]
      Phase-wise rescheduling vs one-shot across a mid-run load swap.
  apples-cli advise    [--wait SECS] [--avail A] [--n N] [--iterations K]
      The wait-for-dedicated vs run-now-on-shared decision (3.2).
  apples-cli whatif    [--n N] [--iterations K] [--profile P] [--seed N]
      Rank hypothetical hardware upgrades by this application's speedup.
  apples-cli grid      [--rate R] [--duration SECS] [--seed N] [--profile P]
                       [--regime selfish|batch|fractional] [--topo SPEC]
                       [--max-in-flight K] [--blind] [--csv] [--json]
                       [--fault-rate C] [--link-fault-rate L] [--mean-outage SECS]
                       [--permanent F] [--max-attempts K] [--backoff SECS]
                       [--trace FILE] [--metrics FILE]
      Stream a multi-tenant job mix through the testbed; fleet metrics.
      --regime picks the scheduling policy: selfish first-decider-wins
      AppLeS agents (default), a centralized batch queue (FCFS + EASY
      backfilling on the estimator's predictions), or fractional
      processor sharing resized on every arrival/departure.
      --topo swaps the Figure-2 testbed for a generated topology
      (star | tree | fat-tree | clusters, e.g. --topo fat-tree:k=8 or
      --topo clusters:clusters=8,segs=4,hosts=8).
      --fault-rate crashes hosts at C per host-hour (--permanent F of
      them for good); revoked jobs retry up to --max-attempts times
      with exponential backoff from --backoff seconds. --trace writes
      every structured event the stack emits to FILE as JSONL;
      --metrics writes a Prometheus text-format snapshot to FILE.
  apples-cli race      [--rate R] [--duration SECS] [--seed N]
                       [--topo SPEC1,SPEC2,...] [--fault-rate C]
                       [--mean-outage SECS] [--max-attempts K]
                       [--report FILE] [--quiet]
      T-RACE: race all three scheduling regimes on identical seeded
      streams across topologies; stretch/slowdown percentiles and
      goodput under faults per (topology, regime). --topo takes a
      comma-separated list (figure-2 = the default testbed). Each
      (topology, regime) leg is narrated on stderr; --quiet silences
      that. --report writes a markdown report with per-regime
      critical-path composition, the diff against the selfish
      baseline, and utilization/queue timelines. Same seed, same
      report, bit for bit.
  apples-cli validate  [same flags as grid] [--horizon SECS]
      Statically check a grid configuration without running it: every
      problem is printed as a typed [code] diagnostic and the exit
      status is nonzero if any are found.
  apples-cli trace summary FILE
      Summarize a JSONL trace: event counts by kind, time span.
  apples-cli trace diff A B
      Compare two traces line by line; report the first divergence.
      Exit 0 when identical, 1 on divergence, 2 on usage errors.
  apples-cli prof FILE [--mode folded|gantt|table] [--width N]
      Time-attribution profile of a JSONL trace: per-job queue-wait /
      retry-backoff / compute / border-exchange / contention-wait
      buckets (they sum to each job's makespan exactly). folded emits
      flamegraph-compatible stacks, gantt an ASCII timeline with
      per-host utilization lanes, table a plain-text breakdown.
  apples-cli spans FILE [--mode tree|jsonl|composition]
      Fold a JSONL trace into causal span trees: job → attempt →
      phase with retry/revocation/backfill cause edges. The phase
      leaves tile each job's makespan exactly (they reconcile with
      `prof` to 0 µs); each tree carries its critical path. tree
      renders indented trees plus the composition rollup, jsonl one
      byte-stable JSON object per job, composition just the rollup.
  apples-cli timeseries FILE [--window SECS | --aligned] [--jsonl]
      Windowed time-series of a JSONL trace: per-kind event counts,
      busy-host utilization, queue depth, backlog, imposed load.
      Default 60 s fixed windows as a table; --aligned makes one row
      per distinct event time; --jsonl emits the byte-stable export.
  apples-cli metrics   [same flags as grid] [--out FILE]
      Run a seeded grid scenario with the metrics registry attached
      and dump a Prometheus text-format snapshot.
  apples-cli snapshot-diff A B
      Compare two Prometheus snapshots series by series.
      Exit 0 when identical, 1 on any difference, 2 on usage errors.
  apples-cli lint      [PATH ...] [--format text|json|github] [--deny LINT]
      Run the simlint static analyzer over the workspace (defaults to
      the current directory). --format github emits workflow-command
      annotations; --deny fails even on allowed findings of LINT.
      Exit 0 clean, 1 on unallowed or denied findings, 2 on usage.
  apples-cli bench     [--hosts N[,N...]] [--topo SPEC] [--jobs N[,N...]]
                       [--seed N] [--out FILE] [--check FILE] [--json]
      Events/sec sweep of the simulation core (T-SCALE): incremental
      dirty-set engine vs the full-recompute baseline on a seeded
      synthetic fleet. --topo adds a sweep point on a generated
      topology instead (e.g. --topo fat-tree:k=8, 1024 hosts). The
      default sweep includes the generated fat-tree point. Writes the
      results to --out (default BENCH_event_engine.json) and appends
      one line per run to the sibling *.history.jsonl trajectory;
      --check validates an existing results file instead of running
      and compares it against the last history point (nonzero exit if
      missing/malformed/mismatched).

Profiles: dedicated | light | moderate (default) | heavy
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{USAGE}");
        return;
    }
    // `trace`, `prof` and `snapshot-diff` take positional file
    // arguments, which the flag grammar rejects — route them before
    // the parser.
    if raw[0] == "trace" {
        std::process::exit(commands::trace(&raw[1..]));
    }
    if raw[0] == "prof" {
        std::process::exit(commands::prof(&raw[1..]));
    }
    if raw[0] == "spans" {
        std::process::exit(commands::spans(&raw[1..]));
    }
    if raw[0] == "timeseries" {
        std::process::exit(commands::timeseries(&raw[1..]));
    }
    if raw[0] == "snapshot-diff" {
        std::process::exit(commands::snapshot_diff(&raw[1..]));
    }
    if raw[0] == "lint" {
        std::process::exit(commands::lint(&raw[1..]));
    }
    let parsed = match Parsed::parse(
        &raw,
        &[
            "n",
            "iterations",
            "profile",
            "seed",
            "source",
            "metric",
            "max-hosts",
            "warmup",
            "host",
            "until",
            "unit",
            "depth",
            "events",
            "runs",
            "phase",
            "wait",
            "avail",
            "rate",
            "duration",
            "max-in-flight",
            "fault-rate",
            "link-fault-rate",
            "mean-outage",
            "permanent",
            "max-attempts",
            "backoff",
            "horizon",
            "trace",
            "metrics",
            "out",
            "hosts",
            "jobs",
            "check",
            "topo",
            "regime",
            "report",
        ],
        &["sp2", "csv", "json", "blind", "quiet"],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "testbed" => commands::testbed(&parsed),
        "schedule" => commands::schedule(&parsed),
        "compare" => commands::compare(&parsed),
        "forecast" => commands::forecast(&parsed),
        "react" => commands::react(&parsed),
        "nile" => commands::nile(&parsed),
        "resched" => commands::resched(&parsed),
        "advise" => commands::advise_cmd(&parsed),
        "whatif" => commands::whatif(&parsed),
        "grid" => commands::grid(&parsed),
        "race" => commands::race(&parsed),
        "validate" => commands::validate(&parsed),
        "metrics" => commands::metrics(&parsed),
        "bench" => commands::bench(&parsed),
        other => {
            eprintln!("error: unknown command {other:?}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
