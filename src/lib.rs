#![warn(missing_docs)]

//! Umbrella crate: re-exports the AppLeS reproduction stack for the
//! examples and integration tests that live at the workspace root, and
//! offers a [`prelude`] for downstream users.

pub use apples;
pub use apples_apps;
pub use apples_bench;
pub use apples_grid;
pub use metasim;
pub use nws;
pub use obsv;

/// One-line import for the common workflow: build a system, watch it,
/// schedule on it.
///
/// ```
/// use apples_suite::prelude::*;
///
/// let mut b = TopologyBuilder::new();
/// let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
/// b.add_host(HostSpec::dedicated("node", 20.0, 256.0, seg));
/// let topo = b.instantiate(SimTime::from_secs(1000), 0).unwrap();
///
/// let mut weather = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
/// weather.advance(&topo, SimTime::from_secs(60));
///
/// let agent = Coordinator::new(jacobi2d_hat(300, 10), UserSpec::default());
/// let (decision, report) = agent.run(&topo, &weather, SimTime::from_secs(60)).unwrap();
/// assert!(report.elapsed_seconds > 0.0);
/// assert_eq!(decision.schedule().hosts().len(), 1);
/// ```
pub mod prelude {
    pub use apples::hat::jacobi2d_hat;
    pub use apples::{
        ApplesError, Coordinator, Decision, Hat, InfoPool, PerformanceMetric, Schedule, UserSpec,
    };
    pub use metasim::host::HostSpec;
    pub use metasim::load::LoadModel;
    pub use metasim::net::{LinkSpec, TopologyBuilder};
    pub use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
    pub use metasim::{HostId, SimTime, Topology};
    pub use nws::{ResourceKey, WeatherService, WeatherServiceConfig};
}
