//! Offline shim exposing `crossbeam::thread::scope` backed by
//! `std::thread::scope`. Only the surface the workspace uses is
//! provided: `scope(|s| ...)` returning `Result`, `Scope::spawn`
//! (whose closure receives a nested `&Scope`), and
//! `ScopedJoinHandle::join`.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] mirroring crossbeam's API.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the thread's panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the
        /// scope again so it can spawn nested threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope whose spawned threads must all finish
    /// before this returns. Unlike crossbeam, a panic in a spawned
    /// thread that was never joined propagates out of `scope` (std
    /// semantics) instead of being returned as `Err`; every caller in
    /// this workspace joins its handles, where the two behave alike.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_fans_out_and_joins() {
        let data = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn nested_spawn_works() {
        let out = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
