//! Offline shim implementing the subset of the `criterion` API the
//! workspace's benches use. It times each benchmark with a handful of
//! wall-clock samples and prints mean time per iteration — no
//! statistics, plots, or comparison against saved baselines. The
//! build container has no crates.io access; this keeps `cargo bench`
//! functional offline.
//!
//! Iteration counts are deliberately small (the real criterion runs
//! thousands); set `CRITERION_SHIM_SAMPLES` to adjust.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats all the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Number of timed samples per benchmark.
fn samples() -> u32 {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the shim's sample count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..samples() {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` with per-sample untimed `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..samples() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:>12.3?} per iter ({} iters)",
            self.name, id, mean, b.iters
        );
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        self.run(id.as_ref(), f);
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(&id.id.clone(), |b| f(b, input));
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmark a closure outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Define a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` harness-less bench targets are run
            // with `--test`-style arguments; skip the heavy work then.
            let bench_mode = std::env::args().any(|a| a == "--bench");
            if !bench_mode && std::env::args().len() > 1 {
                return;
            }
            $($group();)+
        }
    };
}
