//! Offline shim providing [`ChaCha8Rng`] for the vendored `rand` shim.
//!
//! This is a genuine ChaCha stream cipher core with 8 rounds, keyed
//! from a `u64` seed expanded with SplitMix64. The keystream differs
//! from the upstream `rand_chacha` crate (which the offline build
//! container cannot download); the workspace only relies on
//! per-seed determinism, never on a specific stream.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a `u64`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block`.
    word: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal mixing.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (&mixed, &input)) in self.block.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = mixed.wrapping_add(input);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter zero, nonce zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; 16],
            word: 0,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.word] as u64;
        let hi = self.block[self.word + 1] as u64;
        self.word += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.25;
            hi |= x > 0.75;
        }
        assert!(lo && hi, "stream is not spreading over [0, 1)");
    }
}
