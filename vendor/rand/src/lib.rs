//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses: [`RngCore`], [`Rng::gen_range`], [`SeedableRng`],
//! and [`seq::SliceRandom`]. The container this repository builds in
//! has no access to crates.io, so the workspace vendors a minimal,
//! deterministic replacement instead of the real crate. The exact
//! output stream differs from upstream `rand`; everything in the
//! workspace only relies on determinism per seed, not on matching
//! upstream streams.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers over an [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to draw a uniform sample of `T` from it.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, bound)` via widening multiply.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + unit_f64(rng) * (b - a)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// Slice sampling and shuffling (`rand::seq`).
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Mix(u64);
    impl RngCore for Mix {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64, plenty for shim self-tests.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Mix(1);
        for _ in 0..1000 {
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = r.gen_range(1usize..7);
            assert!((1..7).contains(&u));
            let v = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_members() {
        let mut r = Mix(2);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
