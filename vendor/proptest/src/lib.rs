//! Offline shim implementing the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, weighted [`prop_oneof!`]
//! unions, and the `prop_assert*` / `prop_assume!` macros. The build container has no crates.io
//! access, so the workspace vendors this minimal replacement.
//!
//! Differences from real proptest, deliberate for size:
//!
//! * no shrinking — a failing case panics with its assertion message
//!   (inputs are printed via the assertion format arguments, which the
//!   workspace's tests all provide where it matters);
//! * sampling is deterministic per test (a fixed internal seed), so a
//!   failure is reproducible by re-running the test;
//! * `prop_assume!` skips the current case rather than drawing a
//!   replacement.

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator with the shim's fixed default stream.
    pub fn deterministic() -> Self {
        TestRng(0x5DEECE66D)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy mapped through a function.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "empty range strategy");
            a + rng.unit_f64() * (b - a)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    a + rng.below((b - a) as u64 + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// One weighted arm of a [`Union`]: `(weight, sampler)`.
    pub type UnionArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

    /// Weighted choice over heterogeneous strategies sharing a value
    /// type; built by the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, sampler)` arms; weights need not sum to
        /// anything in particular but must not all be zero.
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a nonzero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, f) in &self.arms {
                if pick < *w as u64 {
                    return f(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("pick < total by construction")
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Anything usable as a collection size: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Inclusive lower and exclusive upper bound on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A vector strategy: each element drawn from `elem`, length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        VecStrategy {
            elem,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let len = self.min
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    /// The name real proptest exports.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`
/// picks `a` three times as often as `b`; arms without weights are
/// equally likely. All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __s = $strat;
                (
                    $weight as u32,
                    ::std::boxed::Box::new(move |__rng: &mut $crate::TestRng| {
                        $crate::strategy::Strategy::sample(&__s, __rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: an optional `#![proptest_config(...)]`
/// header followed by `#[test] fn name(pat in strategy, ...) { ... }`
/// items. Each becomes a normal `#[test]` that samples its strategies
/// `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal item muncher for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                // Closure so prop_assume! can skip the case via return.
                let mut __one_case = || $body;
                __one_case();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments and attributes must pass through.
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            xs in prop::collection::vec(0.25f64..0.75, 1..10),
            k in 3usize..6,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            for x in &xs {
                prop_assert!((0.25..0.75).contains(x), "x out of range: {x}");
            }
            prop_assert!((3..6).contains(&k));
        }

        #[test]
        fn tuples_map_and_assume(
            pair in (1u64..100, 0.0f64..1.0).prop_map(|(n, f)| (n * 2, f)),
        ) {
            let (n, f) = pair;
            prop_assume!(f > 0.01);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(f, 2.0);
        }
    }

    proptest! {
        #[test]
        fn oneof_respects_weights_and_types(
            xs in prop::collection::vec(
                prop_oneof![3 => (0u32..10).prop_map(|n| n as u64), 1 => Just(99u64)],
                200,
            ),
        ) {
            let big = xs.iter().filter(|&&x| x == 99u64).count();
            prop_assert!(xs.iter().all(|&x| x < 10u64 || x == 99u64));
            // 1-in-4 odds over 200 draws: bounds loose enough to never flake.
            prop_assert!(big > 10 && big < 120, "weighting off: {big}/200");
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 5..20);
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
