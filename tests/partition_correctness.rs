//! The contract between the scheduler and the numerics: *any* strip
//! partition the scheduling layer produces computes exactly the same
//! grid as the sequential solver. Partitioning is a performance
//! decision, never a correctness decision.

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{
    apples_stencil_schedule, static_strip, uniform_strip, Grid, PartitionedRun,
};
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn reference_grid(n: usize) -> Grid {
    Grid::new(n, |r, c| {
        if r == 0 {
            100.0
        } else if c == 0 {
            25.0
        } else {
            0.0
        }
    })
}

fn check_partition(n: usize, strip_rows: &[usize], sweeps: usize) {
    let mut seq = reference_grid(n);
    let mut par = PartitionedRun::new(&seq, strip_rows);
    seq.run(sweeps);
    par.run(sweeps);
    assert_eq!(
        seq.data(),
        par.assemble().as_slice(),
        "partition {strip_rows:?} diverged from the sequential solver"
    );
}

#[test]
fn uniform_partitions_compute_identical_results() {
    for hosts in 1..=6 {
        let ids: Vec<metasim::HostId> = (0..hosts).map(metasim::HostId).collect();
        let sched = uniform_strip(60, 1, &ids);
        let rows: Vec<usize> = sched.parts.iter().map(|p| p.rows).collect();
        check_partition(60, &rows, 30);
    }
}

#[test]
fn static_partitions_compute_identical_results() {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let sched = static_strip(&tb.topo, 80, 1, &tb.workstations());
    let rows: Vec<usize> = sched.parts.iter().map(|p| p.rows).collect();
    check_partition(80, &rows, 25);
}

#[test]
fn apples_partitions_compute_identical_results() {
    // Whatever strips the agent picks for the real testbed, the
    // numerics must agree with the sequential solver exactly.
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, now);
    let (hat, user) = jacobi_context(96, 1);
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, now);
    let sched = apples_stencil_schedule(&pool).expect("plan");
    let rows: Vec<usize> = sched.parts.iter().map(|p| p.rows).collect();
    assert_eq!(rows.iter().sum::<usize>(), 96);
    check_partition(96, &rows, 40);
}

#[test]
fn pathological_partitions_still_agree() {
    // Single-row strips, alternating sizes, one giant strip.
    check_partition(31, &[1; 31], 20);
    check_partition(40, &[1, 9, 1, 9, 1, 9, 1, 9], 20);
    check_partition(50, &[49, 1], 20);
}
