//! simtrace determinism: the whole point of structured tracing over a
//! deterministic simulator is that the event stream is part of the
//! reproducibility contract. Same seed → byte-identical JSONL, and the
//! `trace diff` machinery must report zero divergence on such a pair.

use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::{run, run_with_sink, GridConfig};
use metasim::simtrace::{
    decision_latency_seconds, first_divergence, host_busy_seconds, host_utilization_timeline,
    queue_depth_timeline, TraceEvent, TraceSummary, VecSink, WriterSink,
};
use metasim::{HostId, SimTime};

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: s(300.0),
        seed: 7,
        ..WorkloadConfig::default()
    }
}

/// Run the stream with a JSONL sink and return the bytes written.
fn traced_jsonl() -> String {
    let mut sink = WriterSink::new(Vec::new());
    run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    assert!(sink.take_error().is_none());
    String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8")
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_jsonl();
    let b = traced_jsonl();
    assert!(!a.is_empty(), "traced stream emitted nothing");
    assert_eq!(a, b, "same seed must reproduce the trace byte for byte");
    assert!(
        first_divergence(&a, &b).is_none(),
        "diff machinery disagrees with byte equality"
    );
}

#[test]
fn trace_diff_pinpoints_the_first_divergence() {
    let a = traced_jsonl();
    // Corrupt one line mid-stream and check the report names it.
    let lines: Vec<&str> = a.lines().collect();
    let k = lines.len() / 2;
    let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mutated[k] = mutated[k].replace("\"at\":", "\"at\":9");
    let b = mutated.join("\n") + "\n";
    let d = first_divergence(&a, &b).expect("mutation must diverge");
    assert_eq!(d.line, k + 1, "divergence line is 1-indexed");
    assert_eq!(d.left.as_deref(), Some(lines[k]));
    // A truncated right side reports the missing line as absent.
    let truncated: String = lines[..k]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<String>();
    let d = first_divergence(&a, &truncated).expect("truncation must diverge");
    assert_eq!(d.line, k + 1);
    assert!(d.right.is_none());
}

#[test]
fn traced_grid_run_spans_the_stack_and_matches_untraced() {
    let mut sink = VecSink::new();
    let traced =
        run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    let plain = run(&GridConfig::default(), &workload()).expect("plain stream");
    assert_eq!(
        traced.records, plain.records,
        "attaching a sink must not perturb the simulation"
    );

    let summary = TraceSummary::from_events(&sink.events);
    assert_eq!(summary.events, sink.events.len());
    assert!(
        summary.by_kind.len() >= 6,
        "expected at least 6 distinct event kinds, got {:?}",
        summary.by_kind
    );
    // At least one event from each layer of the stack.
    let kinds: Vec<&str> = summary.by_kind.keys().map(|k| k.as_str()).collect();
    for (layer, witness) in [
        ("metasim", "compute_start"),
        ("nws", "forecast_issued"),
        ("core", "schedule_chosen"),
        ("grid", "job_completed"),
    ] {
        assert!(kinds.contains(&witness), "no {witness} event from {layer}");
    }

    // The JSONL round-trip preserves the per-kind counts.
    let jsonl: String = sink.events.iter().map(|e| e.to_json() + "\n").collect();
    let reparsed = TraceSummary::from_jsonl(&jsonl);
    assert_eq!(reparsed.by_kind, summary.by_kind);
    assert_eq!(reparsed.first_at, summary.first_at);
    assert_eq!(reparsed.last_at, summary.last_at);
}

/// The derived timelines on a hand-built trace, where every value can
/// be checked against arithmetic done by eye.
#[test]
fn derived_timelines_match_hand_computed_values() {
    let events = vec![
        TraceEvent::JobSubmitted {
            job: 0,
            kind: "spmd".into(),
            at: s(1.0),
        },
        TraceEvent::JobSubmitted {
            job: 1,
            kind: "pipe".into(),
            at: s(2.0),
        },
        TraceEvent::JobDispatched {
            job: 0,
            at: s(3.0),
            attempt: 1,
        },
        // Host 2 computes over [6, 10]: spans buckets [5,10) and [10,15).
        TraceEvent::ComputeFinish {
            host: HostId(2),
            at: s(10.0),
            elapsed_seconds: 4.0,
        },
        TraceEvent::JobRetried {
            job: 0,
            at: s(11.0),
            attempt: 1,
        },
        TraceEvent::JobDispatched {
            job: 0,
            at: s(12.0),
            attempt: 2,
        },
        TraceEvent::JobDispatched {
            job: 1,
            at: s(14.0),
            attempt: 1,
        },
    ];

    let busy = host_busy_seconds(&events);
    assert_eq!(busy.len(), 1);
    assert!((busy[&HostId(2)] - 4.0).abs() < 1e-9);

    let util = host_utilization_timeline(&events, 5.0);
    // Events end at t=14 → ceil(14/5) = 3 buckets of 5 s.
    let lane = &util[&HostId(2)];
    assert_eq!(lane.len(), 3);
    assert!((lane[0] - 0.0).abs() < 1e-9, "no compute before t=5");
    assert!((lane[1] - 0.8).abs() < 1e-9, "4 of [5,10) busy");
    assert!((lane[2] - 0.0).abs() < 1e-9, "interval closed at t=10");

    // submit(+1) submit(+1) dispatch(-1) retry(+1) dispatch(-1) dispatch(-1)
    let depth = queue_depth_timeline(&events);
    let depths: Vec<usize> = depth.iter().map(|&(_, d)| d).collect();
    assert_eq!(depths, vec![1, 2, 1, 2, 1, 0]);
    assert_eq!(depth[3].0, s(11.0), "retry re-enters the queue at t=11");

    // Decision latency is submit → *first* dispatch; retries don't reset it.
    let latency = decision_latency_seconds(&events);
    assert!((latency[&0] - 2.0).abs() < 1e-9);
    assert!((latency[&1] - 12.0).abs() < 1e-9);
}

/// The same derived timelines on a real traced run: cross-check them
/// against each other and against the stream's own invariants.
#[test]
fn derived_timelines_are_consistent_on_a_real_trace() {
    let mut sink = VecSink::new();
    run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    let events = &sink.events;

    // Busy seconds and the utilization timeline are two renderings of
    // the same ComputeFinish intervals clipped to t >= 0, so each
    // host's bucket-sum must equal its busy total.
    let busy = host_busy_seconds(events);
    let util = host_utilization_timeline(events, 10.0);
    assert!(!busy.is_empty(), "no compute events in the stream");
    assert_eq!(
        busy.keys().collect::<Vec<_>>(),
        util.keys().collect::<Vec<_>>()
    );
    for (host, lane) in &util {
        let bucketed: f64 = lane.iter().sum::<f64>() * 10.0;
        assert!(
            (bucketed - busy[host]).abs() < 1e-6,
            "host {host:?}: timeline sums to {bucketed} s, busy says {} s",
            busy[host]
        );
    }

    // Queue depth never goes negative (saturating) and ends at zero:
    // the 300 s stream drains completely.
    let depth = queue_depth_timeline(events);
    assert!(!depth.is_empty());
    assert_eq!(depth.last().map(|&(_, d)| d), Some(0), "queue must drain");
    for w in depth.windows(2) {
        assert!(w[0].0 <= w[1].0, "change points must be time-ordered");
    }

    // Every dispatched job has a non-negative decision latency, and
    // the count matches the dispatched-job population of the trace.
    let latency = decision_latency_seconds(events);
    let dispatched: std::collections::BTreeSet<usize> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JobDispatched { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(latency.len(), dispatched.len());
    assert!(latency.values().all(|&l| l >= 0.0));
}
