//! simtrace determinism: the whole point of structured tracing over a
//! deterministic simulator is that the event stream is part of the
//! reproducibility contract. Same seed → byte-identical JSONL, and the
//! `trace diff` machinery must report zero divergence on such a pair.

use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::{run, run_with_sink, GridConfig};
use metasim::simtrace::{first_divergence, TraceSummary, VecSink, WriterSink};
use metasim::SimTime;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: s(300.0),
        seed: 7,
        ..WorkloadConfig::default()
    }
}

/// Run the stream with a JSONL sink and return the bytes written.
fn traced_jsonl() -> String {
    let mut sink = WriterSink::new(Vec::new());
    run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    assert!(sink.take_error().is_none());
    String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8")
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced_jsonl();
    let b = traced_jsonl();
    assert!(!a.is_empty(), "traced stream emitted nothing");
    assert_eq!(a, b, "same seed must reproduce the trace byte for byte");
    assert!(
        first_divergence(&a, &b).is_none(),
        "diff machinery disagrees with byte equality"
    );
}

#[test]
fn trace_diff_pinpoints_the_first_divergence() {
    let a = traced_jsonl();
    // Corrupt one line mid-stream and check the report names it.
    let lines: Vec<&str> = a.lines().collect();
    let k = lines.len() / 2;
    let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mutated[k] = mutated[k].replace("\"at\":", "\"at\":9");
    let b = mutated.join("\n") + "\n";
    let d = first_divergence(&a, &b).expect("mutation must diverge");
    assert_eq!(d.line, k + 1, "divergence line is 1-indexed");
    assert_eq!(d.left.as_deref(), Some(lines[k]));
    // A truncated right side reports the missing line as absent.
    let truncated: String = lines[..k]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect::<String>();
    let d = first_divergence(&a, &truncated).expect("truncation must diverge");
    assert_eq!(d.line, k + 1);
    assert!(d.right.is_none());
}

#[test]
fn traced_grid_run_spans_the_stack_and_matches_untraced() {
    let mut sink = VecSink::new();
    let traced =
        run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    let plain = run(&GridConfig::default(), &workload()).expect("plain stream");
    assert_eq!(
        traced.records, plain.records,
        "attaching a sink must not perturb the simulation"
    );

    let summary = TraceSummary::from_events(&sink.events);
    assert_eq!(summary.events, sink.events.len());
    assert!(
        summary.by_kind.len() >= 6,
        "expected at least 6 distinct event kinds, got {:?}",
        summary.by_kind
    );
    // At least one event from each layer of the stack.
    let kinds: Vec<&str> = summary.by_kind.keys().map(|k| k.as_str()).collect();
    for (layer, witness) in [
        ("metasim", "compute_start"),
        ("nws", "forecast_issued"),
        ("core", "schedule_chosen"),
        ("grid", "job_completed"),
    ] {
        assert!(kinds.contains(&witness), "no {witness} event from {layer}");
    }

    // The JSONL round-trip preserves the per-kind counts.
    let jsonl: String = sink.events.iter().map(|e| e.to_json() + "\n").collect();
    let reparsed = TraceSummary::from_jsonl(&jsonl);
    assert_eq!(reparsed.by_kind, summary.by_kind);
    assert_eq!(reparsed.first_at, summary.first_at);
    assert_eq!(reparsed.last_at, summary.last_at);
}
