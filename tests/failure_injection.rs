//! Failure injection: resources that die (availability pinned at zero
//! forever) must surface as errors from the executors, and must be
//! routed around by the scheduling layer when the death is visible in
//! the measurements.

use apples::hat::jacobi2d_hat;
use apples::info::InfoPool;
use apples::selector::ResourceSelector;
use apples::user::UserSpec;
use apples::Coordinator;
use metasim::exec::{simulate_spmd, SpmdJob, SpmdPlacement};
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{simulate_transfers, LinkSpec, TopologyBuilder, TransferReq};
use metasim::{HostId, SimError, SimTime, Topology};
use nws::{WeatherService, WeatherServiceConfig};

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Host 1 dies at t = 100 and never comes back.
fn topo_with_dying_host() -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::from_millis(1)));
    b.add_host(HostSpec::dedicated("healthy", 20.0, 1024.0, seg));
    b.add_host(HostSpec::workstation(
        "dying",
        20.0,
        1024.0,
        seg,
        LoadModel::Trace(vec![(s(0.0), 1.0), (s(100.0), 0.0)]),
    ));
    b.instantiate(s(1_000_000.0), 0).expect("topo")
}

#[test]
fn work_on_a_dead_host_reports_placement_lost() {
    let topo = topo_with_dying_host();
    let job = SpmdJob {
        placements: vec![SpmdPlacement {
            host: HostId(1),
            work_mflop: 1e6, // far more than fits before t = 100
            resident_mb: 1.0,
            sends: vec![],
        }],
        iterations: 1,
        start: SimTime::ZERO,
    };
    // The revocation signal names the host that died and when, so a
    // retry layer can exclude it and re-plan the remnant work.
    match simulate_spmd(&topo, &job) {
        Err(SimError::PlacementLost { host, at }) => {
            assert_eq!(host, 1);
            assert_eq!(at, s(100.0));
        }
        other => panic!("expected PlacementLost, got {other:?}"),
    }
}

#[test]
fn work_finishing_before_the_death_succeeds() {
    let topo = topo_with_dying_host();
    let job = SpmdJob {
        placements: vec![SpmdPlacement {
            host: HostId(1),
            work_mflop: 200.0, // 10 s at 20 Mflop/s — done by t = 10
            resident_mb: 1.0,
            sends: vec![],
        }],
        iterations: 1,
        start: SimTime::ZERO,
    };
    let out = simulate_spmd(&topo, &job).expect("completes before death");
    assert_eq!(out.finish, s(10.0));
}

#[test]
fn transfers_over_a_dead_link_report_never_completes() {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::shared(
        "seg",
        10.0,
        SimTime::ZERO,
        LoadModel::Trace(vec![(s(0.0), 1.0), (s(5.0), 0.0)]),
    ));
    b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
    b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
    let topo = b.instantiate(s(1e6), 0).expect("topo");
    // 100 MB at 10 MB/s needs 10 s but the link dies after 5 s.
    let err = simulate_transfers(
        &topo,
        &[TransferReq {
            from: HostId(0),
            to: HostId(1),
            mb: 100.0,
            start: SimTime::ZERO,
            tag: 0,
        }],
    );
    assert!(matches!(err, Err(SimError::NeverCompletes { .. })));
}

#[test]
fn selector_filters_a_host_measured_dead() {
    let topo = topo_with_dying_host();
    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    // Observe well past the death so every forecaster has converged
    // to zero.
    ws.advance(&topo, s(2000.0));
    let hat = jacobi2d_hat(400, 10);
    let user = UserSpec::default();
    let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, s(2000.0));
    let feasible = ResourceSelector::feasible_hosts(&pool);
    assert_eq!(feasible, vec![HostId(0)], "dead host must be filtered");
}

#[test]
fn agent_schedules_around_the_dead_host_and_completes() {
    let topo = topo_with_dying_host();
    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws.advance(&topo, s(2000.0));
    let agent = Coordinator::new(jacobi2d_hat(400, 10), UserSpec::default());
    let (decision, report) = agent.run(&topo, &ws, s(2000.0)).expect("run");
    assert_eq!(decision.schedule().hosts(), vec![HostId(0)]);
    assert!(report.elapsed_seconds > 0.0);
}

#[test]
fn before_the_death_the_agent_may_use_both_hosts() {
    // Scheduling at t = 50 (before the death is visible) legitimately
    // uses the doomed host: nothing in the measurements says otherwise.
    let topo = topo_with_dying_host();
    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws.advance(&topo, s(50.0));
    let hat = jacobi2d_hat(400, 10);
    let user = UserSpec::default();
    let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, s(50.0));
    let feasible = ResourceSelector::feasible_hosts(&pool);
    assert_eq!(feasible.len(), 2);
}
