//! Cross-crate integration: the full AppLeS stack (simulator → NWS →
//! agent → actuation) on the paper's testbed.

use apples::actuator::actuate;
use apples::hat::jacobi2d_hat;
use apples::info::{ForecastSource, InfoPool};
use apples::user::{PerformanceMetric, UserSpec};
use apples::{Coordinator, Schedule};
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn warmup_weather(tb: &metasim::testbed::Testbed, now: SimTime) -> WeatherService {
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, now);
    ws
}

#[test]
fn full_blueprint_on_the_paper_testbed() {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let ws = warmup_weather(&tb, now);

    let agent = Coordinator::new(jacobi2d_hat(1200, 40), UserSpec::default());
    let (decision, report) = agent.run(&tb.topo, &ws, now).expect("run");

    // Exhaustive selection over 8 hosts: 255 candidate sets.
    assert_eq!(decision.considered.len() + decision.rejected, 255);
    assert!(report.elapsed_seconds > 0.0);
    // The chosen schedule covers the grid.
    match decision.schedule() {
        Schedule::Stencil(s) => {
            assert_eq!(s.parts.iter().map(|p| p.rows).sum::<usize>(), 1200);
        }
        other => panic!("unexpected schedule {other:?}"),
    }
}

#[test]
fn estimator_tracks_actuation_within_a_factor() {
    // The §5 cost model parameterized by NWS forecasts should land in
    // the right ballpark of the simulated ground truth.
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let ws = warmup_weather(&tb, now);
    let agent = Coordinator::new(jacobi2d_hat(1500, 50), UserSpec::default());
    let (decision, report) = agent.run(&tb.topo, &ws, now).expect("run");
    let predicted = decision.chosen().predicted_seconds;
    let actual = report.elapsed_seconds;
    let ratio = predicted / actual;
    assert!(
        (0.4..2.5).contains(&ratio),
        "predicted {predicted:.2}s vs actual {actual:.2}s (ratio {ratio:.2})"
    );
}

#[test]
fn decisions_are_deterministic() {
    let mk = || {
        let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
        let now = SimTime::from_secs(600);
        let ws = warmup_weather(&tb, now);
        let agent = Coordinator::new(jacobi2d_hat(1000, 20), UserSpec::default());
        let (decision, report) = agent.run(&tb.topo, &ws, now).expect("run");
        (decision.chosen().clone(), report.elapsed_seconds)
    };
    let (a_dec, a_secs) = mk();
    let (b_dec, b_secs) = mk();
    assert_eq!(a_dec, b_dec);
    assert_eq!(a_secs, b_secs);
}

#[test]
fn oracle_information_never_loses_badly_to_nws() {
    // Forecast-source ordering on one realization: oracle ≤ ~nws.
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let ws = warmup_weather(&tb, now);
    let hat = jacobi2d_hat(1200, 40);
    let user = UserSpec::default();
    let t_for = |source: ForecastSource| {
        let mut pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, now);
        pool.source = source;
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).expect("decision");
        actuate(&tb.topo, &hat, d.schedule(), now)
            .expect("actuate")
            .elapsed_seconds
    };
    let oracle = t_for(ForecastSource::Oracle);
    let nws_t = t_for(ForecastSource::Nws);
    let static_t = t_for(ForecastSource::StaticNominal);
    assert!(
        oracle <= nws_t * 1.3,
        "oracle {oracle:.2}s should not lose to nws {nws_t:.2}s"
    );
    assert!(
        nws_t < static_t,
        "nws {nws_t:.2}s should beat static {static_t:.2}s"
    );
}

#[test]
fn excluding_hosts_is_respected_end_to_end() {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let ws = warmup_weather(&tb, now);
    let user = UserSpec {
        excluded_hosts: vec![tb.sparc2, tb.sparc10],
        ..Default::default()
    };
    let agent = Coordinator::new(jacobi2d_hat(1000, 10), user);
    let (decision, _) = agent.run(&tb.topo, &ws, now).expect("run");
    let hosts = decision.schedule().hosts();
    assert!(!hosts.contains(&tb.sparc2));
    assert!(!hosts.contains(&tb.sparc10));
}

#[test]
fn cost_metric_changes_the_decision() {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let ws = warmup_weather(&tb, now);
    let hat = jacobi2d_hat(1000, 40);

    let time_agent = Coordinator::new(hat.clone(), UserSpec::default());
    let (time_dec, _) = time_agent.run(&tb.topo, &ws, now).expect("run");

    let cost_agent = Coordinator::new(
        hat,
        UserSpec {
            metric: PerformanceMetric::Cost {
                per_host_second: 5.0,
            },
            ..Default::default()
        },
    );
    let (cost_dec, _) = cost_agent.run(&tb.topo, &ws, now).expect("run");

    assert!(
        cost_dec.schedule().hosts().len() <= time_dec.schedule().hosts().len(),
        "a steep host charge should never use more hosts"
    );
    assert!(cost_dec.schedule().hosts().len() <= 2);
}

#[test]
fn pipeline_agent_assigns_lhsf_to_the_vector_machine() {
    // Run the generic Coordinator on the 3D-REACT HAT over the CASA
    // testbed: it must choose the distributed pair over either
    // single-site option, and orient the pipeline with LHSF (the
    // vector code) on the C90.
    use apples_apps::react3d::{casa_testbed, react3d_hat};
    let tb = casa_testbed(0).expect("casa");
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, SimTime::from_secs(600));
    let agent = Coordinator::new(react3d_hat(), UserSpec::default());
    let pool = InfoPool::with_nws(
        &tb.topo,
        &ws,
        &agent.hat,
        &agent.user,
        SimTime::from_secs(600),
    );
    let decision = agent.decide(&pool).expect("decision");
    match decision.schedule() {
        Schedule::Pipeline(p) => {
            assert_eq!(p.producer, tb.c90, "LHSF belongs on the C90");
            assert_eq!(p.consumer, tb.paragon);
            assert!(
                (2..=40).contains(&p.unit_size),
                "unit size {} out of the sensible range",
                p.unit_size
            );
        }
        other => panic!("expected a pipeline schedule, got {other:?}"),
    }
    // Distributed must out-predict both single-site candidates.
    let singles: Vec<f64> = decision
        .considered
        .iter()
        .filter(|c| c.hosts.len() == 1)
        .map(|c| c.predicted_seconds)
        .collect();
    assert_eq!(singles.len(), 2);
    for s in singles {
        assert!(decision.chosen().predicted_seconds < s);
    }
}

#[test]
fn pipeline_estimator_tracks_the_simulator() {
    use apples::estimator::estimate_pipeline;
    use apples::schedule::PipelineSchedule;
    use apples_apps::react3d::{casa_testbed, distributed_run, react3d_hat};
    let tb = casa_testbed(0).expect("casa");
    let hat = react3d_hat();
    let user = UserSpec::default();
    let pool = InfoPool::static_nominal(&tb.topo, &hat, &user, SimTime::ZERO);
    let sched = PipelineSchedule {
        producer: tb.c90,
        consumer: tb.paragon,
        unit_size: 10,
        depth: 4,
    };
    let predicted = estimate_pipeline(&pool, &sched).expect("estimate");
    let simulated = distributed_run(&tb, 10, 4)
        .expect("run")
        .makespan(SimTime::ZERO)
        .as_secs_f64();
    let ratio = predicted / simulated;
    assert!(
        (0.5..2.0).contains(&ratio),
        "pipeline predicted {predicted:.0}s vs simulated {simulated:.0}s (ratio {ratio:.2})"
    );
}

#[test]
fn heavier_load_profiles_slow_the_same_schedule() {
    let run_at = |profile: LoadProfile| {
        let tb = pcl_sdsc(&TestbedConfig {
            profile,
            ..Default::default()
        })
        .expect("testbed");
        let now = SimTime::from_secs(600);
        let hat = jacobi2d_hat(1000, 30);
        // Fixed uniform schedule so only the environment varies.
        let sched = apples_apps::jacobi2d::uniform_strip(1000, 30, &tb.workstations());
        let t = hat.as_stencil().expect("stencil");
        metasim::exec::simulate_spmd(&tb.topo, &sched.to_spmd_job(t, now))
            .expect("run")
            .makespan(now)
            .as_secs_f64()
    };
    let dedicated = run_at(LoadProfile::Dedicated);
    let moderate = run_at(LoadProfile::Moderate);
    let heavy = run_at(LoadProfile::Heavy);
    assert!(dedicated < moderate && moderate < heavy);
}
