//! simprof acceptance: the profiler's attribution must be *exact* and
//! *reproducible*. Exact means the five per-job buckets (queue-wait,
//! retry-backoff, compute, border-exchange, contention-wait) partition
//! each job's makespan with zero microseconds left over — a profiler
//! that loses time is a profiler that lies. Reproducible means the
//! folded-stack output and the Prometheus exposition are byte-identical
//! across two runs of the same seed, so they can gate regressions.

use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::{run, run_with_sink, GridConfig};
use metasim::simtrace::VecSink;
use metasim::SimTime;
use obsv::{FanoutSink, MetricsSink, Profile, PHASES};

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs_f64(400.0),
        seed: 42,
        ..WorkloadConfig::default()
    }
}

fn run_traced() -> Vec<metasim::simtrace::TraceEvent> {
    let mut sink = VecSink::new();
    run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("traced stream");
    sink.events
}

/// One traced run, shared by the read-only tests (the byte-identity
/// test re-runs on its own; sharing would make it vacuous).
fn traced_events() -> &'static [metasim::simtrace::TraceEvent] {
    use std::sync::OnceLock;
    static EVENTS: OnceLock<Vec<metasim::simtrace::TraceEvent>> = OnceLock::new();
    EVENTS.get_or_init(run_traced)
}

#[test]
fn attribution_buckets_partition_each_makespan_exactly() {
    let profile = Profile::from_events(traced_events());
    assert!(
        profile.jobs.len() >= 5,
        "scenario too small to exercise the profiler: {} jobs",
        profile.jobs.len()
    );
    assert_eq!(profile.unclosed_jobs, 0, "every job should close in 600s");
    for j in &profile.jobs {
        let total: u64 = PHASES.iter().map(|&p| j.bucket_us(p)).sum();
        assert_eq!(
            total,
            j.makespan_us(),
            "job {} ({}): buckets sum to {total}us but makespan is {}us",
            j.job,
            j.kind,
            j.makespan_us()
        );
    }
    // The scenario must exercise more than one phase overall, or the
    // partition invariant is vacuous.
    let exercised = PHASES
        .iter()
        .filter(|&&p| profile.jobs.iter().any(|j| j.bucket_us(p) > 0))
        .count();
    assert!(exercised >= 2, "only {exercised} phase(s) saw any time");
}

#[test]
fn folded_output_is_byte_identical_across_runs() {
    let a = Profile::from_events(traced_events());
    let b = Profile::from_events(&run_traced());
    assert!(!a.folded().is_empty());
    assert_eq!(a.folded(), b.folded(), "folded stacks must reproduce");
    assert_eq!(a.gantt(72), b.gantt(72), "gantt must reproduce");
    assert_eq!(a.table(), b.table(), "table must reproduce");
}

#[test]
fn jsonl_roundtrip_profile_matches_in_memory_profile() {
    let events = traced_events();
    let direct = Profile::from_events(events);
    let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let reparsed = Profile::from_jsonl(&jsonl);
    assert_eq!(reparsed.skipped_lines, 0, "every emitted line must parse");
    assert_eq!(reparsed.events, direct.events);
    assert_eq!(reparsed.folded(), direct.folded());
    assert_eq!(reparsed.table(), direct.table());
}

#[test]
fn metrics_exposition_is_byte_identical_across_runs() {
    let expose = || {
        let mut sink = MetricsSink::new();
        run_with_sink(&GridConfig::default(), &workload(), &mut sink).expect("metered stream");
        sink.registry().expose()
    };
    let a = expose();
    let b = expose();
    assert!(
        a.lines().any(|l| l.starts_with("apples_jobs_total")),
        "exposition is missing the job counters:\n{a}"
    );
    assert_eq!(
        a, b,
        "same seed must reproduce the exposition byte for byte"
    );
}

#[test]
fn fanout_sink_feeds_both_consumers_without_perturbing_the_run() {
    let mut trace = VecSink::new();
    let mut metrics = MetricsSink::new();
    let traced = {
        let mut fan = FanoutSink::new();
        fan.push(&mut trace);
        fan.push(&mut metrics);
        run_with_sink(&GridConfig::default(), &workload(), &mut fan).expect("fanout stream")
    };
    let plain = run(&GridConfig::default(), &workload()).expect("plain stream");
    assert_eq!(
        traced.records, plain.records,
        "fan-out must not perturb the simulation"
    );
    // Both consumers saw the same stream: the per-kind event counters
    // match the trace, and the per-outcome job counters match the
    // profiler's view of the same events.
    let mut by_kind: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for e in &trace.events {
        *by_kind.entry(e.kind()).or_default() += 1;
    }
    for (kind, n) in &by_kind {
        let v = metrics
            .registry()
            .counter_value("apples_events_total", &[("kind", kind)]);
        assert_eq!(v, Some(*n as f64), "event counter for kind {kind}");
    }
    let profile = Profile::from_events(&trace.events);
    let completed = metrics
        .registry()
        .counter_value("apples_jobs_total", &[("outcome", "completed")])
        .unwrap_or(0.0);
    assert_eq!(
        completed as usize,
        profile.jobs.iter().filter(|j| j.completed).count()
    );
}
