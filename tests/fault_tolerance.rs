//! Fault-tolerant job streams, end to end: seeded fault schedules must
//! replay bit for bit, a testbed that dies entirely must fail every
//! job *and terminate*, retry backoff must stay monotone and bounded,
//! and the aware regime with rescheduling must complete strictly more
//! of the same stream than the blind single-attempt baseline.

use apples_grid::workload::{
    ArrivalProcess, JobKind, JobMix, JobSpec, RetryPolicy, WorkloadConfig,
};
use apples_grid::{run, run_jobs, run_jobs_with_retry, FaultInjection, GridConfig, Regime};
use metasim::{FaultModel, FaultSpec, HostFault, HostId, SimTime};
use proptest::prelude::*;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Every host crashes at `at`; `recover` is shared by all of them.
fn all_hosts_down(at: f64, recover: Option<f64>) -> FaultSpec {
    FaultSpec {
        host_faults: (0..8)
            .map(|h| HostFault {
                host: HostId(h),
                at: s(at),
                recover: recover.map(s),
            })
            .collect(),
        link_faults: vec![],
    }
}

/// Same seed + same fault model → bit-identical records and fleet
/// metrics, retries and reschedules included.
#[test]
fn seeded_fault_stream_replays_bit_identically() {
    let cfg = GridConfig {
        faults: FaultInjection::Random(FaultModel {
            host_crashes_per_hour: 3.0,
            ..FaultModel::default()
        }),
        ..GridConfig::default()
    };
    // Kind-diverse but light mix: under faults the aware regime runs
    // every Jacobi job phase-wise, so the default mix's 1500-iteration
    // solves would make this quick determinism check take minutes.
    let mix = JobMix {
        entries: vec![
            (
                JobKind::Jacobi {
                    n: 800,
                    iterations: 60,
                },
                3.0,
            ),
            (
                JobKind::Jacobi {
                    n: 1200,
                    iterations: 240,
                },
                1.0,
            ),
            (JobKind::ReactPipeline { units: 30 }, 1.0),
            (JobKind::NileFarm { events: 20_000 }, 1.0),
        ],
    };
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix,
        duration: s(150.0),
        seed: 11,
        retry: RetryPolicy::with_attempts(3),
    };
    let a = run(&cfg, &workload).expect("first faulted stream");
    let b = run(&cfg, &workload).expect("second faulted stream");
    assert!(a.fleet.jobs > 0, "stream should admit jobs");
    assert_eq!(a.records, b.records);
    assert_eq!(a.fleet, b.fleet);
}

/// When the whole testbed dies permanently mid-stream, every job that
/// needs it afterwards exhausts its retries and is *recorded* failed —
/// the stream terminates instead of hanging or dropping jobs.
#[test]
fn a_fully_dead_testbed_fails_every_job_and_terminates() {
    let jobs: Vec<JobSpec> = (0..3)
        .map(|i| JobSpec {
            id: i,
            submit: s(120.0 + 60.0 * i as f64),
            kind: JobKind::Jacobi {
                n: 800,
                iterations: 150,
            },
        })
        .collect();
    let cfg = GridConfig {
        // Kill everything before the first submission, forever.
        faults: FaultInjection::Spec(all_hosts_down(650.0, None)),
        ..GridConfig::default()
    };
    for regime in [Regime::Aware, Regime::Blind] {
        let out = run_jobs_with_retry(
            &GridConfig {
                regime,
                ..cfg.clone()
            },
            &jobs,
            s(300.0),
            RetryPolicy::with_attempts(3),
        )
        .expect("stream must terminate, not hang");
        assert_eq!(out.records.len(), jobs.len(), "{regime:?} dropped jobs");
        for r in &out.records {
            assert!(!r.completed, "{regime:?} job {} on a dead fleet", r.id);
            assert_eq!(r.exec_seconds, 0.0);
        }
        assert_eq!(out.fleet.jobs_failed, jobs.len());
        assert_eq!(out.fleet.jobs_completed, 0);
        assert_eq!(out.fleet.goodput, 0.0);
    }
}

/// Aware agents that detect revocations, back off and reschedule
/// complete strictly more of the same stream than blind single-attempt
/// agents facing the identical mid-stream fault schedule.
#[test]
fn aware_rescheduling_completes_more_than_blind_under_faults() {
    let jobs: Vec<JobSpec> = (0..2)
        .map(|i| JobSpec {
            id: i,
            submit: s(30.0 * i as f64),
            kind: JobKind::Jacobi {
                n: 800,
                iterations: 80,
            },
        })
        .collect();
    // The fleet goes dark between the two submissions (the second job
    // can only start inside the outage) and comes back before the
    // exponential backoff budget runs out: four attempts from t = 630
    // reach to roughly t = 840.
    let faults = all_hosts_down(615.0, Some(800.0));
    let duration = s(120.0);

    let blind = run_jobs(
        &GridConfig {
            regime: Regime::Blind,
            faults: FaultInjection::Spec(faults.clone()),
            ..GridConfig::default()
        },
        &jobs,
        duration,
    )
    .expect("blind stream");
    let aware = run_jobs_with_retry(
        &GridConfig {
            regime: Regime::Aware,
            faults: FaultInjection::Spec(faults),
            ..GridConfig::default()
        },
        &jobs,
        duration,
        RetryPolicy::with_attempts(4),
    )
    .expect("aware stream");

    assert_eq!(aware.records.len(), blind.records.len());
    assert!(
        aware.fleet.jobs_completed > blind.fleet.jobs_completed,
        "aware {}/{} vs blind {}/{} completed",
        aware.fleet.jobs_completed,
        aware.fleet.jobs,
        blind.fleet.jobs_completed,
        blind.fleet.jobs,
    );
    assert!(aware.fleet.goodput > blind.fleet.goodput);
    assert!(
        aware.fleet.total_attempts > aware.fleet.jobs_completed as u64
            || aware.fleet.jobs_rescheduled > 0,
        "recovery must have done real work: {:?}",
        aware.fleet,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exponential backoff never shrinks as attempts accumulate and
    /// never exceeds the cap, whatever the policy knobs.
    #[test]
    fn retry_backoff_is_monotone_and_bounded(
        max_attempts in 1u32..32,
        base_secs in 0.0f64..900.0,
        factor in 0.0f64..16.0,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base_backoff: SimTime::from_secs_f64(base_secs),
            factor,
        };
        prop_assert!(policy.validate().is_ok());
        let mut prev = SimTime::ZERO;
        for attempt in 1..=96u32 {
            let b = policy.backoff(attempt);
            prop_assert!(b >= prev, "backoff shrank at attempt {attempt}");
            prop_assert!(b <= RetryPolicy::MAX_BACKOFF);
            prev = b;
        }
        prop_assert_eq!(policy.backoff(10_000), policy.backoff(20_000));
    }
}
