//! Integration tests for the apples-grid job-stream service: the same
//! seed and workload configuration must reproduce the fleet bit for
//! bit, and the aware information regime must actually observe the
//! load earlier tenants impose.

use apples_grid::workload::{ArrivalProcess, JobKind, JobMix, JobSpec, WorkloadConfig};
use apples_grid::{run, run_jobs, GridConfig, Regime};
use metasim::SimTime;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Short stream for the quick tier-1 suite: 300 s of the default mix
/// covers multiple jobs, both regimes and contention at a fraction of
/// the original 1800 s window's cost. The many-job population lives in
/// `long_soak_stream_stays_deterministic`, which trades job size for
/// job count.
fn stream_workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: s(300.0),
        seed: 7,
        ..WorkloadConfig::default()
    }
}

/// Same seed + same workload config → bit-identical per-job records
/// and fleet metrics across two independent runs.
#[test]
fn same_seed_and_workload_reproduce_fleet_metrics_exactly() {
    let cfg = GridConfig {
        seed: 7,
        ..GridConfig::default()
    };
    let workload = stream_workload();
    let a = run(&cfg, &workload).expect("first run");
    let b = run(&cfg, &workload).expect("second run");
    assert!(a.fleet.jobs > 0, "stream should admit at least one job");
    assert_eq!(a.records, b.records);
    assert_eq!(a.fleet, b.fleet);
}

/// The two information regimes run the same admitted job list to
/// completion; only the forecasts the agents decide from differ.
#[test]
fn both_regimes_complete_every_admitted_job() {
    let workload = stream_workload();
    let n_submitted = workload.realize().len();
    for regime in [Regime::Aware, Regime::Blind] {
        let cfg = GridConfig {
            seed: 7,
            regime,
            ..GridConfig::default()
        };
        let out = run(&cfg, &workload).expect("stream");
        assert_eq!(out.records.len(), n_submitted, "{regime:?} lost jobs");
        for r in &out.records {
            assert!(r.exec_seconds > 0.0);
            assert!(r.wait_seconds >= 0.0);
            assert!(r.slowdown >= 1.0 - 1e-9);
            assert!(!r.hosts.is_empty());
        }
    }
}

/// A later tenant's NWS forecasts reflect earlier tenants' imposed
/// load: with three long solves parked on the fast hosts, an aware
/// probe schedules around them and finishes no slower than a blind
/// probe that plans from a pristine pre-stream snapshot.
#[test]
fn aware_probe_observes_earlier_tenants_load() {
    let jobs: Vec<JobSpec> = [6000u32, 6000, 6000, 400]
        .iter()
        .enumerate()
        .map(|(i, &iterations)| JobSpec {
            id: i,
            submit: s(60.0 * i as f64),
            kind: JobKind::Jacobi {
                n: 1200,
                iterations: iterations as usize,
            },
        })
        .collect();
    let duration = s(400.0);
    let mut outcomes = Vec::new();
    for regime in [Regime::Aware, Regime::Blind] {
        let cfg = GridConfig {
            seed: 1996,
            regime,
            ..GridConfig::default()
        };
        outcomes.push(run_jobs(&cfg, &jobs, duration).expect("probe stream"));
    }
    let (aware, blind) = (&outcomes[0], &outcomes[1]);
    let aware_probe = aware.records.last().expect("probe");
    let blind_probe = blind.records.last().expect("probe");
    // The occupied fast hosts look pristine to the blind probe, so it
    // piles on top of them; the aware probe routes around.
    assert_ne!(aware_probe.hosts, blind_probe.hosts);
    assert!(
        aware_probe.exec_seconds <= blind_probe.exec_seconds,
        "aware probe ({:.1}s) should not lose to blind ({:.1}s)",
        aware_probe.exec_seconds,
        blind_probe.exec_seconds
    );
}

/// The soak stream: what the original 1800 s / default-mix version
/// (≈ 61 s of wall clock, hidden behind `#[ignore]`) actually tested
/// was *many* jobs flowing through one service instance — enough
/// arrivals that queues form, tenants overlap and the RNG streams are
/// consumed far past the first few draws. A 10× arrival rate over a
/// downsized job mix admits the same ≥ 20-job population in a couple
/// of wall-clock seconds, so the test now runs in the tier-1 suite.
#[test]
fn long_soak_stream_stays_deterministic() {
    let mix = JobMix {
        entries: vec![
            (
                JobKind::Jacobi {
                    n: 200,
                    iterations: 10,
                },
                4.0,
            ),
            (
                JobKind::Jacobi {
                    n: 300,
                    iterations: 30,
                },
                2.0,
            ),
            (JobKind::ReactPipeline { units: 4 }, 1.0),
            (JobKind::NileFarm { events: 500 }, 1.0),
        ],
    };
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.5 },
        mix,
        duration: s(60.0),
        seed: 7,
        ..WorkloadConfig::default()
    };
    let cfg = GridConfig {
        seed: 7,
        ..GridConfig::default()
    };
    let a = run(&cfg, &workload).expect("first soak");
    let b = run(&cfg, &workload).expect("second soak");
    assert!(a.fleet.jobs >= 20, "soak should admit a real stream");
    assert_eq!(a.records, b.records);
    assert_eq!(a.fleet, b.fleet);
}
