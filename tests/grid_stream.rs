//! Integration tests for the apples-grid job-stream service: the same
//! seed and workload configuration must reproduce the fleet bit for
//! bit, and the aware information regime must actually observe the
//! load earlier tenants impose.

use apples_grid::workload::{ArrivalProcess, JobKind, JobMix, JobSpec, WorkloadConfig};
use apples_grid::{run, run_jobs, GridConfig, Regime};
use metasim::SimTime;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Short stream for the quick tier-1 suite: the previous 1800 s window
/// admitted ~36 jobs and stalled the default `cargo test -q` run for
/// about a minute; 300 s keeps the same coverage shape (multiple jobs,
/// both regimes, contention) at a fraction of the cost. The original
/// long stream lives on in `long_soak_stream_stays_deterministic`
/// behind `#[ignore]`.
fn stream_workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: s(300.0),
        seed: 7,
        ..WorkloadConfig::default()
    }
}

/// Same seed + same workload config → bit-identical per-job records
/// and fleet metrics across two independent runs.
#[test]
fn same_seed_and_workload_reproduce_fleet_metrics_exactly() {
    let cfg = GridConfig {
        seed: 7,
        ..GridConfig::default()
    };
    let workload = stream_workload();
    let a = run(&cfg, &workload).expect("first run");
    let b = run(&cfg, &workload).expect("second run");
    assert!(a.fleet.jobs > 0, "stream should admit at least one job");
    assert_eq!(a.records, b.records);
    assert_eq!(a.fleet, b.fleet);
}

/// The two information regimes run the same admitted job list to
/// completion; only the forecasts the agents decide from differ.
#[test]
fn both_regimes_complete_every_admitted_job() {
    let workload = stream_workload();
    let n_submitted = workload.realize().len();
    for regime in [Regime::Aware, Regime::Blind] {
        let cfg = GridConfig {
            seed: 7,
            regime,
            ..GridConfig::default()
        };
        let out = run(&cfg, &workload).expect("stream");
        assert_eq!(out.records.len(), n_submitted, "{regime:?} lost jobs");
        for r in &out.records {
            assert!(r.exec_seconds > 0.0);
            assert!(r.wait_seconds >= 0.0);
            assert!(r.slowdown >= 1.0 - 1e-9);
            assert!(!r.hosts.is_empty());
        }
    }
}

/// A later tenant's NWS forecasts reflect earlier tenants' imposed
/// load: with three long solves parked on the fast hosts, an aware
/// probe schedules around them and finishes no slower than a blind
/// probe that plans from a pristine pre-stream snapshot.
#[test]
fn aware_probe_observes_earlier_tenants_load() {
    let jobs: Vec<JobSpec> = [6000u32, 6000, 6000, 400]
        .iter()
        .enumerate()
        .map(|(i, &iterations)| JobSpec {
            id: i,
            submit: s(60.0 * i as f64),
            kind: JobKind::Jacobi {
                n: 1200,
                iterations: iterations as usize,
            },
        })
        .collect();
    let duration = s(400.0);
    let mut outcomes = Vec::new();
    for regime in [Regime::Aware, Regime::Blind] {
        let cfg = GridConfig {
            seed: 1996,
            regime,
            ..GridConfig::default()
        };
        outcomes.push(run_jobs(&cfg, &jobs, duration).expect("probe stream"));
    }
    let (aware, blind) = (&outcomes[0], &outcomes[1]);
    let aware_probe = aware.records.last().expect("probe");
    let blind_probe = blind.records.last().expect("probe");
    // The occupied fast hosts look pristine to the blind probe, so it
    // piles on top of them; the aware probe routes around.
    assert_ne!(aware_probe.hosts, blind_probe.hosts);
    assert!(
        aware_probe.exec_seconds <= blind_probe.exec_seconds,
        "aware probe ({:.1}s) should not lose to blind ({:.1}s)",
        aware_probe.exec_seconds,
        blind_probe.exec_seconds
    );
}

/// The original 1800 s soak stream, kept for manual long-haul runs:
/// `cargo test --test grid_stream -- --ignored`.
#[test]
#[ignore = "long soak; the quick suite covers the same path with a 300 s stream"]
fn long_soak_stream_stays_deterministic() {
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
        mix: JobMix::default_mix(),
        duration: s(1800.0),
        seed: 7,
        ..WorkloadConfig::default()
    };
    let cfg = GridConfig {
        seed: 7,
        ..GridConfig::default()
    };
    let a = run(&cfg, &workload).expect("first soak");
    let b = run(&cfg, &workload).expect("second soak");
    assert!(a.fleet.jobs >= 20, "soak should admit a real stream");
    assert_eq!(a.records, b.records);
    assert_eq!(a.fleet, b.fleet);
}
