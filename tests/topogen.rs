//! Property-based and regression tests for the parametric topology
//! generators and the routing cache: generated testbeds must validate
//! clean, the cached `route_ref` fast path must agree with the
//! BFS-derived table it replaced, hierarchical cluster hints must not
//! change routing, same-seed generation must be byte-identical, and
//! fleet-scale validation must stay fast.

use metasim::testbed::LoadProfile;
use metasim::topogen::{self, TopoGenConfig, TopoSpec};
use metasim::{validate_topology, HostId, SimTime};
use proptest::prelude::*;

fn cfg(profile: LoadProfile, seed: u64) -> TopoGenConfig {
    TopoGenConfig {
        profile,
        horizon: SimTime::from_secs(20_000),
        seed,
    }
}

/// A strategy over small dense (unhinted) specs: every family except
/// clusters, whose hinted route derivation is covered separately.
fn dense_spec() -> impl Strategy<Value = TopoSpec> {
    prop_oneof![
        (4usize..30, 2usize..6).prop_map(|(hosts, per_seg)| TopoSpec::Star { hosts, per_seg }),
        (4usize..30, 2usize..4, 2usize..5).prop_map(|(hosts, arity, per_seg)| TopoSpec::Tree {
            hosts,
            arity,
            per_seg
        }),
        (2usize..4, 2usize..7, 1usize..4).prop_map(|(l2, l1, hosts_per_l1)| TopoSpec::FatTree {
            l2,
            l1,
            hosts_per_l1
        }),
    ]
}

/// A strategy over small specs of every family.
fn small_spec() -> impl Strategy<Value = TopoSpec> {
    prop_oneof![
        dense_spec(),
        (1usize..4, 1usize..4, 1usize..4).prop_map(|(clusters, segs, hosts_per_seg)| {
            TopoSpec::Clusters {
                clusters,
                segs,
                hosts_per_seg,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated topology passes the full static validator: all
    /// host pairs route, every named link exists, nothing is dead.
    #[test]
    fn generated_topologies_validate_clean(
        spec in small_spec(),
        seed in 0u64..1000,
    ) {
        let topo = topogen::generate(&spec, &cfg(LoadProfile::Light, seed)).expect("generate");
        prop_assert_eq!(topo.hosts().len(), spec.host_count());
        let report = validate_topology(&topo);
        prop_assert!(report.is_ok(), "{} (seed {seed}): {report}", spec.label());
    }

    /// The cached `route_ref` fast path returns the same link sequence
    /// as the uncached table walk, for every host pair. Restricted to
    /// dense (unhinted) families where the legacy table is complete.
    #[test]
    fn route_ref_matches_uncached_table(
        spec in dense_spec(),
        seed in 0u64..1000,
    ) {
        let topo = topogen::generate(&spec, &cfg(LoadProfile::Dedicated, seed)).expect("generate");
        let n = topo.hosts().len();
        for a in 0..n {
            for b in 0..n {
                let fast = topo.route_ref(HostId(a), HostId(b)).expect("route_ref").to_vec();
                let slow = topo.route_uncached(HostId(a), HostId(b)).expect("route_uncached");
                prop_assert_eq!(&fast, &slow, "{}: {a}->{b}", spec.label());
            }
        }
    }

    /// Hierarchical cluster hints are a compression strategy, not a
    /// semantic switch: the same clusters topology built with and
    /// without hints routes identically.
    #[test]
    fn cluster_hints_do_not_change_routes(
        clusters in 1usize..4,
        segs in 1usize..4,
        hosts_per_seg in 1usize..3,
        seed in 0u64..1000,
    ) {
        let spec = TopoSpec::Clusters { clusters, segs, hosts_per_seg };
        let c = cfg(LoadProfile::Dedicated, seed);
        let hinted = topogen::generate(&spec, &c).expect("hinted");
        let mut builder = topogen::build(&spec, &c).expect("builder");
        builder.clear_cluster_hints();
        let dense = builder.instantiate(c.horizon, c.seed).expect("dense");
        let n = hinted.hosts().len();
        for a in 0..n {
            for b in 0..n {
                let h = hinted.route_ref(HostId(a), HostId(b)).expect("hinted route").to_vec();
                let d = dense.route_ref(HostId(a), HostId(b)).expect("dense route").to_vec();
                prop_assert_eq!(&h, &d, "{a}->{b}");
                let hl = hinted.route_latency(HostId(a), HostId(b)).expect("hinted latency");
                let dl = dense.route_latency(HostId(a), HostId(b)).expect("dense latency");
                prop_assert_eq!(hl, dl, "latency {a}->{b}");
            }
        }
    }

    /// Generation is a pure function of (spec, profile, horizon, seed):
    /// two runs are byte-identical, and the seed matters.
    #[test]
    fn same_seed_generation_is_byte_identical(
        spec in small_spec(),
        seed in 0u64..1000,
    ) {
        let c = cfg(LoadProfile::Moderate, seed);
        let a = topogen::generate(&spec, &c).expect("a");
        let b = topogen::generate(&spec, &c).expect("b");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let other = topogen::generate(&spec, &cfg(LoadProfile::Moderate, seed ^ 0x5eed))
            .expect("other");
        prop_assert_ne!(format!("{a:?}"), format!("{other:?}"));
    }
}

/// Satellite regression: validating a 1000-host generated testbed must
/// be fast. The pre-rewrite validator walked all O(hosts^2) host pairs
/// through allocating route lookups and took tens of seconds at this
/// scale; the segment-pair walk plus the route cache keeps it well
/// under a second.
#[test]
fn fleet_scale_validation_is_fast() {
    let spec = TopoSpec::parse("fat-tree:k=8").expect("spec");
    assert_eq!(spec.host_count(), 1024);
    let topo = topogen::generate(&spec, &cfg(LoadProfile::Dedicated, 1996)).expect("generate");
    let t0 = std::time::Instant::now();
    let report = validate_topology(&topo);
    let elapsed = t0.elapsed();
    assert!(report.is_ok(), "unexpected issues:\n{report}");
    assert!(
        elapsed < std::time::Duration::from_secs(1),
        "validate_topology took {elapsed:?} on 1024 hosts (budget 1s)"
    );
}

/// The CLI-facing spec grammar round-trips and rejects junk — the
/// integration-level contract `--topo` relies on.
#[test]
fn spec_grammar_round_trips() {
    for s in [
        "star:hosts=64,per_seg=8",
        "tree:hosts=64,arity=4,per_seg=8",
        "fat-tree:l2=8,l1=128,hosts=8",
        "clusters:clusters=8,segs=4,hosts=8",
    ] {
        let spec = TopoSpec::parse(s).expect(s);
        assert_eq!(spec.label(), s);
    }
    assert_eq!(
        TopoSpec::parse("fat-tree:k=8").expect("k=8"),
        TopoSpec::parse("fat-tree:l2=8,l1=128,hosts=8").expect("long form"),
    );
    assert!(TopoSpec::parse("mesh:hosts=4").is_err());
    assert!(TopoSpec::parse("star:hosts=0").is_err());
}
