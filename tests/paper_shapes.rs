//! Smoke-level reproduction checks: every headline claim of the
//! paper's evaluation, at reduced sizes so the suite stays fast. The
//! full-size sweeps live in the `apples-bench` figure binaries.

use apples_bench::ablation::forecast_ablation;
use apples_bench::fig5;
use apples_bench::fig6;
use apples_bench::nile_exp;
use apples_bench::react_exp;
use metasim::testbed::LoadProfile;

#[test]
fn fig5_apples_beats_static_partitions_by_2x_plus() {
    // Average three seeds at one size: the paper's 2-8x claim should
    // show at least a 1.5x strip gap and 2x blocked gap even in smoke.
    let cfg = fig5::Fig5Config {
        sizes: vec![1200],
        iterations: 30,
        trials: 3,
        base_seed: 1996,
        profile: LoadProfile::Moderate,
    };
    let rows = fig5::run(&cfg);
    let r = &rows[0];
    assert!(
        r.strip_ratio() > 1.5,
        "strip ratio only {:.2} (apples {:.2}s strip {:.2}s)",
        r.strip_ratio(),
        r.apples.mean,
        r.strip.mean
    );
    assert!(
        r.blocked_ratio() > 2.0,
        "blocked ratio only {:.2}",
        r.blocked_ratio()
    );
}

#[test]
fn fig6_blocked_cliff_and_apples_continuity() {
    let below = fig6::run_trial(3000, 10, 1996);
    let above = fig6::run_trial(4200, 10, 1996);
    // Blocked on SP-2: fine below, cliff above.
    assert!(below.blocked_sp2_s < 2.0 * below.apples_s);
    assert!(above.blocked_sp2_s > 3.0 * above.apples_s);
    // AppLeS grows smoothly: the per-point time must not blow up.
    let per_point_below = below.apples_s / (3000.0f64 * 3000.0);
    let per_point_above = above.apples_s / (4200.0f64 * 4200.0);
    assert!(
        per_point_above < 3.0 * per_point_below,
        "apples per-point time jumped: {per_point_below:e} -> {per_point_above:e}"
    );
}

#[test]
fn react_16h_single_site_5h_distributed() {
    let r = react_exp::run(0);
    assert!(r.c90_hours > 16.0);
    assert!(r.paragon_hours > 16.0);
    assert!(r.distributed_hours < 5.0);
}

#[test]
fn nile_skim_crossover_exists() {
    let rows = nile_exp::run(150_000, &[1, 16], 0);
    assert!(!rows[0].skim);
    assert!(rows[1].skim);
}

#[test]
fn forecast_quality_orders_schedule_quality() {
    let rows = forecast_ablation(1000, 25, 3, 2024);
    let get = |name: &str| {
        rows.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s.mean)
            .expect("row")
    };
    // Static scheduling pays for its blindness.
    assert!(get("nws") < get("static-nominal"));
    assert!(get("oracle") < get("static-nominal"));
}
