//! The workspace must stay lint-clean: `simlint` run in-process over
//! the whole tree reports zero unallowed findings. Reverting any of
//! the burned-down fixes (a `partial_cmp(..).unwrap()` comparator, an
//! `unwrap()` in simulation library code, a wall-clock read) makes
//! this test fail, which is what keeps the deterministic-replay and
//! NaN-safety guarantees from silently rotting.

use std::path::Path;

#[test]
fn workspace_has_no_unallowed_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::lint_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walker break?",
        report.files_scanned
    );
    let unallowed: Vec<_> = report.unallowed().collect();
    assert!(
        unallowed.is_empty(),
        "unallowed simlint findings:\n{}",
        unallowed
            .iter()
            .map(|f| format!(
                "  {}:{}:{} {} — {}",
                f.file,
                f.line,
                f.col,
                f.lint.name(),
                f.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Two scans of the same tree must render byte-identical reports:
/// findings sort by (path, line, col, lint, message), so the JSON
/// artifact CI uploads diffs cleanly between runs.
#[test]
fn workspace_report_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let a = simlint::lint_workspace(root).expect("workspace scan");
    let b = simlint::lint_workspace(root).expect("workspace scan");
    assert_eq!(a.render_json(), b.render_json());
    let keys: Vec<_> = a
        .findings
        .iter()
        .map(|f| {
            (
                f.file.clone(),
                f.line,
                f.col,
                f.lint.name(),
                f.message.clone(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must come out sorted");
}

/// The sim crates run the full policy, including the cross-file
/// passes; if someone trims the policy table this fails before the
/// lint coverage silently shrinks.
#[test]
fn sim_crates_enable_the_cross_file_passes() {
    for rel in [
        "crates/metasim/src/lib.rs",
        "crates/simcore/src/lib.rs",
        "crates/grid/src/lib.rs",
        // The regime layer is new in PR 9; it must inherit the full
        // grid-crate policy, not slip through as an unlisted module.
        "crates/grid/src/sched.rs",
        "crates/grid/src/service.rs",
        // The span-tree and time-series layers are new in PR 10; both
        // fold the deterministic trace, so the full policy applies.
        "crates/obsv/src/span.rs",
        "crates/obsv/src/timeseries.rs",
    ] {
        let enabled = simlint::lints_for_path(Path::new(rel));
        for lint in [
            simlint::Lint::PanicReachability,
            simlint::Lint::RngDiscipline,
            simlint::Lint::SimTimeHygiene,
        ] {
            assert!(
                enabled.contains(&lint),
                "{rel} should enable {}",
                lint.name()
            );
        }
    }
}

#[test]
fn every_allow_directive_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::lint_workspace(root).expect("workspace scan");
    for f in &report.findings {
        if f.allowed {
            let reason = f.allow_reason.as_deref().unwrap_or("");
            assert!(
                !reason.trim().is_empty(),
                "{}:{} allow for {} has no reason",
                f.file,
                f.line,
                f.lint.name()
            );
        }
    }
}
