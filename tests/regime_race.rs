//! Property tests for the scheduling-regime layer (PR 9): whatever
//! the seed, all three regimes must schedule exactly the same job set,
//! EASY backfilling must never delay the head-of-queue reservation,
//! and fractional shares must never oversubscribe a host.

use apples_grid::workload::{ArrivalProcess, JobMix, RetryPolicy, WorkloadConfig};
use apples_grid::{
    run_batch_with_log, run_fractional_with_log, run_regime_jobs_with_sink, FaultInjection,
    GridConfig, SchedRegime,
};
use metasim::simtrace::NoopSink;
use metasim::{FaultModel, SimTime};
use proptest::prelude::*;

fn workload(seed: u64, gap_secs: u64) -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Uniform {
            gap: SimTime::from_secs(gap_secs),
        },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs(1500),
        seed,
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
    }
}

fn grid(seed: u64, crash_rate: f64) -> GridConfig {
    GridConfig {
        seed,
        faults: if crash_rate > 0.0 {
            FaultInjection::Random(FaultModel {
                host_crashes_per_hour: crash_rate,
                link_outages_per_hour: 0.0,
                mean_outage: SimTime::from_secs(600),
                permanent_fraction: 0.25,
            })
        } else {
            FaultInjection::None
        },
        ..GridConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// No regime may lose or duplicate work: every submitted job id
    /// appears exactly once in the outcome, completed or failed.
    #[test]
    fn regimes_conserve_the_job_set(seed in 0u64..1000, crash_rate in 0.0f64..3.0) {
        let w = workload(seed, 180);
        let cfg = grid(seed, if crash_rate < 1.0 { 0.0 } else { crash_rate });
        let jobs = w.realize();
        let mut want: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        want.sort_unstable();
        for regime in SchedRegime::ALL {
            let out = run_regime_jobs_with_sink(
                &cfg, regime, &jobs, w.duration, w.retry, &mut NoopSink,
            ).expect("stream");
            let mut got: Vec<usize> = out.records.iter().map(|r| r.id).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "regime {} lost or duplicated jobs", regime);
            for r in &out.records {
                prop_assert!(r.finish >= r.start, "job {} finished before starting", r.id);
                prop_assert!(r.start >= r.submit, "job {} started before submission", r.id);
            }
        }
    }

    /// The EASY invariant: a backfill may start out of FCFS order only
    /// if it cannot push the head-of-queue reservation later.
    #[test]
    fn easy_backfills_never_delay_the_head(seed in 0u64..1000) {
        let w = workload(seed, 60);
        let cfg = grid(seed, 0.0);
        let jobs = w.realize();
        let (_, log) = run_batch_with_log(&cfg, &jobs, w.duration, w.retry, &mut NoopSink)
            .expect("batch stream");
        for b in &log.backfills {
            prop_assert!(
                b.reservation_after <= b.reservation_before,
                "backfill of job {} delayed the reservation {:?} -> {:?}",
                b.job, b.reservation_before, b.reservation_after
            );
        }
    }

    /// Processor sharing conserves capacity: on every host, over every
    /// constant-share interval, resident shares sum to at most 1.
    #[test]
    fn fractional_shares_conserve_capacity(seed in 0u64..1000) {
        let w = workload(seed, 90);
        let cfg = grid(seed, 0.0);
        let jobs = w.realize();
        let (out, log) = run_fractional_with_log(&cfg, &jobs, w.duration, w.retry, &mut NoopSink)
            .expect("fractional stream");
        prop_assert_eq!(out.records.len(), jobs.len());
        for s in &log.samples {
            prop_assert!(
                s.total_share <= 1.0 + 1e-9,
                "host {:?} oversubscribed: {} on [{:?}, {:?})",
                s.host, s.total_share, s.from, s.to
            );
            prop_assert!(s.from < s.to, "zero-length share sample");
        }
    }
}
