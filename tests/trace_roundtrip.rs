//! simtrace JSON round-trip properties: `render → parse → render` must
//! be byte-identical for every event kind the stack can emit,
//! including strings full of JSON-hostile characters (quotes,
//! backslashes, control bytes, non-ASCII) and non-finite floats (which
//! serialize as `null` and re-parse as NaN → `null` again). The trace
//! is part of the reproducibility contract, so its serialization must
//! be a fixed point after one round trip.

use metasim::net::LinkId;
use metasim::simtrace::TraceEvent;
use metasim::{HostId, SimTime};
use proptest::prelude::*;
use proptest::strategy::Union;

/// Strings over an alphabet chosen to stress `json_escape`: every
/// escape class (quote, backslash, the named controls, other control
/// bytes) plus non-ASCII and innocent filler.
fn arb_string() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 16] = [
        'a', 'Z', '7', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '\u{7f}', 'µ', '入',
        ':', ',',
    ];
    prop::collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Floats including the non-finite values `json_f64` spells as null.
fn arb_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e6f64..1.0e6,
        2 => 1.0e-9f64..1.0e-6,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn arb_time() -> impl Strategy<Value = SimTime> {
    (0u64..4_000_000_000_000).prop_map(SimTime)
}

fn arb_opt_time() -> impl Strategy<Value = Option<SimTime>> {
    prop_oneof![
        1 => Just(None),
        2 => (0u64..4_000_000_000_000).prop_map(|t| Some(SimTime(t))),
    ]
}

/// One arbitrary event of any of the 22 kinds.
fn arb_event() -> Union<TraceEvent> {
    let host = || (0usize..4096).prop_map(HostId);
    prop_oneof![
        (host(), arb_time(), arb_f64()).prop_map(|(host, at, work_mflop)| {
            TraceEvent::ComputeStart {
                host,
                at,
                work_mflop,
            }
        }),
        (host(), arb_time(), arb_f64()).prop_map(|(host, at, elapsed_seconds)| {
            TraceEvent::ComputeFinish {
                host,
                at,
                elapsed_seconds,
            }
        }),
        (host(), host(), arb_time(), arb_f64())
            .prop_map(|(from, to, at, mb)| { TraceEvent::TransferStart { from, to, at, mb } }),
        (host(), host(), arb_time(), arb_f64(), arb_f64()).prop_map(
            |(from, to, at, mb, contention_share)| TraceEvent::TransferFinish {
                from,
                to,
                at,
                mb,
                contention_share,
            }
        ),
        (host(), arb_time(), arb_opt_time()).prop_map(|(host, at, recover)| {
            TraceEvent::HostFaultInjected { host, at, recover }
        }),
        (0usize..64, arb_time(), arb_opt_time()).prop_map(|(link, at, recover)| {
            TraceEvent::LinkFaultInjected {
                link: LinkId(link),
                at,
                recover,
            }
        }),
        (host(), arb_time()).prop_map(|(host, at)| TraceEvent::PlacementRevoked { host, at }),
        (host(), arb_time(), arb_time(), arb_f64()).prop_map(|(host, at, until, factor)| {
            TraceEvent::LoadImposed {
                host,
                at,
                until,
                factor,
            }
        }),
        (
            arb_string(),
            arb_time(),
            arb_f64(),
            arb_f64(),
            arb_f64(),
            arb_string()
        )
            .prop_map(|(resource, at, predicted, observed, error, method)| {
                TraceEvent::ForecastIssued {
                    resource,
                    at,
                    predicted,
                    observed,
                    error,
                    method,
                }
            }),
        (arb_time(), 0usize..1000)
            .prop_map(|(at, candidates)| TraceEvent::ResourceSelection { at, candidates }),
        (arb_time(), 0usize..100, 0usize..100, arb_f64(), arb_f64()).prop_map(
            |(at, index, hosts, predicted_seconds, objective)| TraceEvent::CandidateConsidered {
                at,
                index,
                hosts,
                predicted_seconds,
                objective,
            }
        ),
        (arb_time(), 0usize..100, arb_f64()).prop_map(|(at, index, predicted_seconds)| {
            TraceEvent::ScheduleChosen {
                at,
                index,
                predicted_seconds,
            }
        }),
        (arb_time(), arb_time(), arb_f64()).prop_map(|(at, finish, elapsed_seconds)| {
            TraceEvent::Actuated {
                at,
                finish,
                elapsed_seconds,
            }
        }),
        (arb_time(), 0usize..32)
            .prop_map(|(at, phase)| TraceEvent::RescheduleTriggered { at, phase }),
        (arb_time(), arb_f64(), arb_f64(), arb_f64(), 0u32..2).prop_map(
            |(at, keep_seconds, move_seconds, move_cost_seconds, m)| {
                TraceEvent::RescheduleDecision {
                    at,
                    keep_seconds,
                    move_seconds,
                    move_cost_seconds,
                    migrated: m == 1,
                }
            }
        ),
        (0usize..10_000, arb_string(), arb_time())
            .prop_map(|(job, kind, at)| TraceEvent::JobSubmitted { job, kind, at }),
        (0usize..10_000, arb_time(), 1u32..16)
            .prop_map(|(job, at, attempt)| TraceEvent::JobDispatched { job, at, attempt }),
        (0usize..10_000, arb_time(), 1u32..16)
            .prop_map(|(job, at, attempt)| TraceEvent::JobRetried { job, at, attempt }),
        (0usize..10_000, arb_time(), arb_time()).prop_map(|(job, at, reservation)| {
            TraceEvent::JobBackfilled {
                job,
                at,
                reservation,
            }
        }),
        (0usize..10_000, arb_time(), arb_f64()).prop_map(|(job, at, dedicated_seconds)| {
            TraceEvent::JobWorkMeasured {
                job,
                at,
                dedicated_seconds,
            }
        }),
        (0usize..10_000, arb_time(), arb_f64()).prop_map(|(job, at, exec_seconds)| {
            TraceEvent::JobCompleted {
                job,
                at,
                exec_seconds,
            }
        }),
        (0usize..10_000, arb_time(), 1u32..16)
            .prop_map(|(job, at, attempts)| TraceEvent::JobFailed { job, at, attempts }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One render→parse→render cycle is the identity on bytes, per
    /// event and over a whole stream.
    #[test]
    fn render_parse_render_is_byte_identity(
        events in prop::collection::vec(arb_event(), 1..40),
    ) {
        for e in &events {
            let json = e.to_json();
            let back = TraceEvent::from_json(&json);
            prop_assert!(back.is_some(), "failed to parse own output: {json}");
            let json2 = back.map(|b| b.to_json()).unwrap_or_default();
            prop_assert_eq!(&json, &json2, "not a fixed point");
            prop_assert!(!json.contains('\n'), "JSONL line embeds a newline: {json}");
        }

        let stream: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let (parsed, skipped) = TraceEvent::from_jsonl(&stream);
        prop_assert_eq!(skipped, 0, "own stream had unparseable lines");
        prop_assert_eq!(parsed.len(), events.len());
        let stream2: String = parsed.iter().map(|e| e.to_json() + "\n").collect();
        prop_assert_eq!(stream, stream2);
    }

    /// `kind()` and `at()` survive the trip — the summary machinery
    /// keys on them.
    #[test]
    fn kind_and_time_survive_the_trip(e in arb_event()) {
        let back = TraceEvent::from_json(&e.to_json());
        prop_assert!(back.is_some());
        if let Some(b) = back {
            prop_assert_eq!(b.kind(), e.kind());
            prop_assert_eq!(b.at(), e.at());
        }
    }
}

#[test]
fn malformed_lines_are_counted_not_fatal() {
    let good = TraceEvent::JobDispatched {
        job: 3,
        at: SimTime(1_000_000),
        attempt: 1,
    }
    .to_json();
    let text = format!(
        "{good}\n\
         \n\
         not json at all\n\
         {{\"kind\":\"job_dispatched\",\"at\":5}}\n\
         {{\"kind\":\"no_such_kind\",\"at\":5,\"job\":1}}\n\
         {{\"at\":5,\"job\":1}}\n\
         {good}\n"
    );
    let (events, skipped) = TraceEvent::from_jsonl(&text);
    assert_eq!(events.len(), 2, "only the two good lines parse");
    assert_eq!(
        skipped, 4,
        "garbage, missing-field, unknown-kind and keyless lines all count"
    );
    assert_eq!(events[0], events[1]);
}

#[test]
fn truncated_fields_do_not_parse_as_something_else() {
    // A dispatched event whose attempt field is missing its value.
    assert!(
        TraceEvent::from_json("{\"kind\":\"job_dispatched\",\"at\":5,\"job\":1,\"attempt\":}")
            .is_none()
    );
    // An unterminated string never finds its closing quote.
    assert!(TraceEvent::from_json(
        "{\"kind\":\"job_submitted\",\"at\":5,\"job\":1,\"class\":\"spm"
    )
    .is_none());
    // Negative microseconds cannot be u64.
    assert!(
        TraceEvent::from_json("{\"kind\":\"placement_revoked\",\"at\":-5,\"host\":1}").is_none()
    );
}
