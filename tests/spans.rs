//! Causal span trees on real traced regime runs (PR 10): the phase
//! leaves of every job tree must tile its makespan exactly, reconcile
//! with the simprof buckets to 0 µs, and serialize byte-identically
//! across same-seed reruns — for all three scheduling regimes, with
//! fault injection on.

use apples_grid::workload::{ArrivalProcess, JobMix, RetryPolicy, WorkloadConfig};
use apples_grid::{run_regime_jobs_with_sink, FaultInjection, GridConfig, SchedRegime};
use metasim::simtrace::{EventSink, TraceEvent, VecSink};
use metasim::{FaultModel, SimTime};
use obsv::{Phase, Profile, SpanKind, SpanTree, TimeSeriesSink, WindowMode, PHASES};

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.008 },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs(1200),
        seed,
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
    }
}

fn grid(seed: u64) -> GridConfig {
    GridConfig {
        seed,
        faults: FaultInjection::Random(FaultModel {
            host_crashes_per_hour: 1.0,
            link_outages_per_hour: 0.0,
            mean_outage: SimTime::from_secs(600),
            permanent_fraction: 0.25,
        }),
        ..GridConfig::default()
    }
}

fn traced(regime: SchedRegime, seed: u64) -> Vec<TraceEvent> {
    let w = workload(seed);
    let jobs = w.realize();
    let mut sink = VecSink::new();
    run_regime_jobs_with_sink(&grid(seed), regime, &jobs, w.duration, w.retry, &mut sink)
        .expect("traced regime stream");
    sink.events
}

#[test]
fn span_leaves_tile_every_makespan_in_every_regime() {
    for regime in SchedRegime::ALL {
        let events = traced(regime, 11);
        let tree = SpanTree::from_events(&events);
        assert!(!tree.jobs.is_empty(), "{regime}: no jobs folded");
        for j in &tree.jobs {
            let root = j.root();
            // Partition leaves, in order, must cover [submit, finish)
            // with no gap and no overlap.
            let leaves: Vec<_> = j.spans.iter().filter(|s| s.partition).collect();
            assert!(!leaves.is_empty(), "{regime}: job {} has no leaves", j.job);
            let mut cursor = root.start;
            for leaf in &leaves {
                assert_eq!(
                    leaf.start,
                    cursor,
                    "{regime}: job {} gap/overlap before a {} leaf",
                    j.job,
                    leaf.kind.name()
                );
                assert!(leaf.end >= leaf.start);
                cursor = leaf.end;
            }
            assert_eq!(
                cursor, root.end,
                "{regime}: job {} leaves stop short of its finish",
                j.job
            );
            let leaf_sum: u64 = leaves.iter().map(|s| s.us()).sum();
            assert_eq!(leaf_sum, j.makespan_us(), "{regime}: job {}", j.job);

            // The critical path is exactly the partition leaves.
            let cp: u64 = j.critical_path().iter().map(|s| s.us()).sum();
            assert_eq!(cp, j.makespan_us(), "{regime}: job {} critical path", j.job);
        }
    }
}

#[test]
fn spans_reconcile_with_simprof_per_phase_in_every_regime() {
    for regime in SchedRegime::ALL {
        let events = traced(regime, 23);
        let tree = SpanTree::from_events(&events);
        let prof = Profile::from_events(&events);
        for j in &tree.jobs {
            let jp = prof
                .jobs
                .iter()
                .find(|p| p.job == j.job)
                .unwrap_or_else(|| panic!("{regime}: job {} missing from simprof", j.job));
            for phase in PHASES {
                let span_us: u64 = j
                    .spans
                    .iter()
                    .filter(|s| s.partition && s.kind.phase() == Some(phase))
                    .map(|s| s.us())
                    .sum();
                assert_eq!(
                    span_us,
                    jp.bucket_us(phase),
                    "{regime}: job {} disagrees with simprof on {}",
                    j.job,
                    phase.name()
                );
            }
        }
        // Aggregate reconciliation: 0 µs difference, by phase and total.
        let comp = tree.composition();
        let prof_total: u64 = prof
            .jobs
            .iter()
            .map(|p| PHASES.iter().map(|&ph| p.bucket_us(ph)).sum::<u64>())
            .sum();
        assert_eq!(comp.total_us, prof_total, "{regime}: aggregate drift");
    }
}

#[test]
fn retries_carry_cause_edges_and_backoff_leaves() {
    // Seeds are faulty, so at least one regime at one seed retries;
    // scan a few to make the assertion robust to scheduling detail.
    let mut saw_retry_cause = false;
    for seed in [11, 23, 47] {
        for regime in SchedRegime::ALL {
            let events = traced(regime, seed);
            let retried: std::collections::BTreeSet<usize> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::JobRetried { job, .. } => Some(*job),
                    _ => None,
                })
                .collect();
            let tree = SpanTree::from_events(&events);
            for j in &tree.jobs {
                if !retried.contains(&j.job) {
                    continue;
                }
                saw_retry_cause = true;
                assert!(
                    j.attempts > 1,
                    "{regime}: retried job {} shows 1 attempt",
                    j.job
                );
                // Every attempt after the first carries a Retried cause
                // and every non-final attempt ends in a backoff leaf.
                let attempts: Vec<_> = j
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::Attempt)
                    .collect();
                assert_eq!(attempts.len() as u32, j.attempts);
                for a in attempts.iter().skip(1) {
                    assert!(
                        !a.causes.is_empty(),
                        "{regime}: job {} attempt {} has no cause edge",
                        j.job,
                        a.attempt
                    );
                }
                let backoffs = j
                    .spans
                    .iter()
                    .filter(|s| s.kind == SpanKind::RetryBackoff && s.us() > 0)
                    .count();
                assert!(
                    backoffs > 0 || j.spans.iter().any(|s| s.kind == SpanKind::RetryBackoff),
                    "{regime}: job {} retried without a backoff leaf",
                    j.job
                );
            }
        }
    }
    assert!(
        saw_retry_cause,
        "no seed produced a retry; weaken the fault model instead"
    );
}

#[test]
fn span_and_timeseries_exports_are_byte_identical_across_reruns() {
    for regime in SchedRegime::ALL {
        let a = traced(regime, 31);
        let b = traced(regime, 31);
        let ta = SpanTree::from_events(&a);
        let tb = SpanTree::from_events(&b);
        assert_eq!(ta.to_jsonl(), tb.to_jsonl(), "{regime}: spans drifted");
        assert_eq!(ta.render(), tb.render(), "{regime}: span render drifted");

        let series = |events: &[TraceEvent], mode: WindowMode| {
            let mut sink = TimeSeriesSink::new(mode);
            for e in events {
                sink.record(e.clone());
            }
            sink.finalize()
        };
        for mode in [
            WindowMode::Fixed(SimTime::from_secs(60)),
            WindowMode::EventAligned,
        ] {
            let sa = series(&a, mode);
            let sb = series(&b, mode);
            assert_eq!(
                sa.to_jsonl(),
                sb.to_jsonl(),
                "{regime}: timeseries drifted in {mode:?}"
            );
        }
    }
}

#[test]
fn fractional_windows_split_into_compute_and_dilution() {
    // The JobWorkMeasured event is what lets the profiler see compute
    // inside a processor-sharing window; without it every fractional
    // window would read as pure contention.
    let events = traced(SchedRegime::Fractional, 11);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::JobWorkMeasured { .. })),
        "fractional runs must publish dedicated-work measurements"
    );
    let tree = SpanTree::from_events(&events);
    let compute: u64 = tree
        .jobs
        .iter()
        .flat_map(|j| &j.spans)
        .filter(|s| s.partition && s.kind.phase() == Some(Phase::Compute))
        .map(|s| s.us())
        .sum();
    assert!(compute > 0, "no compute attributed under processor sharing");
}
