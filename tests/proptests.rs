//! Property-based tests across the stack: invariants of the planner,
//! the availability algebra, the partitioned numerics, and the
//! forecasters, on randomized inputs.

use apples::hat::jacobi2d_hat;
use apples::info::InfoPool;
use apples::planner::plan_strip;
use apples::user::UserSpec;
use apples_apps::jacobi2d::{Grid, PartitionedRun};
use metasim::host::HostSpec;
use metasim::load::{Imposition, LoadModel, StepSeries};
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime, Topology};
use proptest::prelude::*;

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Arbitrary small host pool on one segment.
fn topo_from(speeds: &[f64], mems: &[f64]) -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", 5.0, SimTime::from_millis(1)));
    for (i, (&sp, &mem)) in speeds.iter().zip(mems).enumerate() {
        b.add_host(HostSpec::dedicated(&format!("h{i}"), sp, mem, seg));
    }
    b.instantiate(s(1e6), 0).expect("topo")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The strip planner always emits a complete partition with
    /// positive strips over a subset of the offered hosts.
    #[test]
    fn planner_output_is_always_a_valid_partition(
        speeds in prop::collection::vec(1.0f64..200.0, 1..6),
        n in 50usize..400,
    ) {
        let mems = vec![4096.0; speeds.len()];
        let topo = topo_from(&speeds, &mems);
        let hat = jacobi2d_hat(n, 5);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let hosts: Vec<HostId> = (0..speeds.len()).map(HostId).collect();
        let sched = plan_strip(&pool, &hosts).expect("plan");
        prop_assert!(sched.validate().is_ok());
        prop_assert_eq!(sched.parts.iter().map(|p| p.rows).sum::<usize>(), n);
        for p in &sched.parts {
            prop_assert!(p.rows > 0);
            prop_assert!(hosts.contains(&p.host));
        }
    }

    /// When the spill guard is on and total memory suffices, no strip
    /// exceeds its host's memory capacity.
    #[test]
    fn planner_respects_memory_caps(
        speeds in prop::collection::vec(1.0f64..100.0, 2..5),
        n in 100usize..300,
    ) {
        // Memories sized so each host holds ~2n/k rows: total capacity
        // about twice the grid.
        let k = speeds.len();
        let row_mb = n as f64 * 16.0 / 1e6;
        let mems: Vec<f64> = (0..k).map(|_| row_mb * (2 * n / k) as f64).collect();
        let topo = topo_from(&speeds, &mems);
        let hat = jacobi2d_hat(n, 5);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let hosts: Vec<HostId> = (0..k).map(HostId).collect();
        let sched = plan_strip(&pool, &hosts).expect("plan");
        for p in &sched.parts {
            let mem = topo.host(p.host).expect("host").spec.mem_mb;
            let resident = p.rows as f64 * row_mb;
            prop_assert!(
                resident <= mem + 1e-9,
                "strip of {} rows ({resident:.3} MB) exceeds {mem:.3} MB",
                p.rows
            );
        }
    }

    /// With exactly two hosts (both strips are end strips, so border
    /// costs are symmetric) the faster host never gets a smaller strip.
    /// Note this is NOT an invariant for three or more strips: middle
    /// strips exchange two borders and end strips one, so a fast host
    /// in the middle can legitimately receive fewer rows than a slower
    /// host at an end.
    #[test]
    fn planner_is_monotone_in_speed_for_host_pairs(
        fast in 10.0f64..100.0,
        slow_frac in 0.05f64..0.95,
        n in 100usize..400,
    ) {
        let speeds = [fast, fast * slow_frac];
        let mems = vec![4096.0; 2];
        let topo = topo_from(&speeds, &mems);
        let hat = jacobi2d_hat(n, 5);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).expect("plan");
        let rows_of = |h: usize| {
            sched.parts.iter().find(|p| p.host == HostId(h)).map(|p| p.rows).unwrap_or(0)
        };
        prop_assert!(
            rows_of(0) + 1 >= rows_of(1),
            "fast host got {} rows, slow host {}",
            rows_of(0),
            rows_of(1)
        );
    }

    /// The strip solver equalizes predicted per-strip times: with
    /// uniform memory and a fast uniform network, every strip's
    /// `rows_i * sec_per_row_i` lands within a couple of rows'
    /// rounding of every other's.
    #[test]
    fn planner_balances_predicted_times(
        speeds in prop::collection::vec(5.0f64..100.0, 2..5),
        n in 400usize..900,
    ) {
        let mems = vec![1_000_000.0; speeds.len()];
        let topo = topo_from(&speeds, &mems);
        let hat = jacobi2d_hat(n, 5);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let hosts: Vec<HostId> = (0..speeds.len()).map(HostId).collect();
        let sched = plan_strip(&pool, &hosts).expect("plan");
        prop_assume!(sched.parts.len() >= 2);
        // Predicted T_i = compute + border exchange, using the same
        // per-transfer model the planner's C_i uses: one link latency
        // (1 ms) plus the border payload at 5 MB/s, twice per
        // neighbour (send + receive).
        let border_mb = n as f64 * 8.0 / 1e6;
        let transfer = 0.001 + border_mb / 5.0;
        let k = sched.parts.len();
        let times: Vec<f64> = sched
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let speed = speeds[p.host.0];
                let compute = p.rows as f64 * (n as f64 * 5.0 / 1e6) / speed;
                let neighbours = usize::from(i > 0) + usize::from(i + 1 < k);
                compute + 2.0 * neighbours as f64 * transfer
            })
            .collect();
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        // Integer rounding moves each strip by at most ~2 rows; allow
        // that plus 5% slack.
        let row_cost = (n as f64 * 5.0 / 1e6)
            / speeds.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(
            max - min <= 3.0 * row_cost + 0.05 * max,
            "unbalanced strips: times {times:?}"
        );
    }

    /// StepSeries integral is additive over adjacent intervals.
    #[test]
    fn step_series_integral_is_additive(
        points in prop::collection::vec((0u64..10_000, 0.0f64..1.0), 1..20),
        a in 0u64..5_000,
        b in 0u64..5_000,
        c in 0u64..5_000,
    ) {
        let series = StepSeries::from_points(
            points.into_iter().map(|(t, v)| (SimTime::from_secs(t), v)).collect(),
        );
        let mut ts = [a, b, c];
        ts.sort_unstable();
        let (t0, t1, t2) = (
            SimTime::from_secs(ts[0]),
            SimTime::from_secs(ts[1]),
            SimTime::from_secs(ts[2]),
        );
        let whole = series.integral(t0, t2);
        let split = series.integral(t0, t1) + series.integral(t1, t2);
        prop_assert!((whole - split).abs() < 1e-6, "{whole} != {split}");
    }

    /// Imposed foreground load never drives availability outside
    /// `[0, 1]`, no matter how many windows overlap or how wild the
    /// factors are (negative, zero, or greater than one); and when
    /// every factor is a genuine share in `[0, 1]`, an imposition
    /// never *raises* availability anywhere.
    #[test]
    fn impositions_keep_availability_in_unit_interval(
        points in prop::collection::vec((0u64..10_000, 0.0f64..1.0), 1..20),
        windows in prop::collection::vec(
            (0u64..10_000, 0u64..10_000, -0.5f64..2.5),
            0..12,
        ),
    ) {
        let base = StepSeries::from_points(
            points.into_iter().map(|(t, v)| (SimTime::from_secs(t), v)).collect(),
        );
        let imps: Vec<Imposition> = windows
            .iter()
            .map(|&(a, b, f)| {
                Imposition::new(
                    SimTime::from_secs(a.min(b)),
                    SimTime::from_secs(a.max(b)),
                    f,
                )
            })
            .collect();
        let loaded = base.with_impositions(&imps);
        for &(t, v) in loaded.points() {
            prop_assert!((0.0..=1.0).contains(&v), "value {v} at {t:?}");
        }
        // Probe between change points too: the composition must hold
        // everywhere, not just at the breakpoints.
        let damping = windows.iter().all(|&(_, _, f)| f <= 1.0);
        for probe in (0..10_000u64).step_by(487) {
            let t = SimTime::from_secs(probe);
            let v = loaded.value_at(t);
            prop_assert!((0.0..=1.0).contains(&v), "value {v} at {t:?}");
            if damping {
                prop_assert!(
                    v <= base.value_at(t) + 1e-12,
                    "imposition raised availability at {t:?}"
                );
            }
        }
    }

    /// `time_to_complete` is consistent with `integral`: the work
    /// delivered between start and completion equals the work asked
    /// for (up to the microsecond rounding of completion times).
    #[test]
    fn time_to_complete_matches_integral(
        points in prop::collection::vec((0u64..10_000, 0.05f64..1.0), 1..20),
        work in 0.1f64..5_000.0,
        speed in 0.1f64..100.0,
    ) {
        let series = StepSeries::from_points(
            points.into_iter().map(|(t, v)| (SimTime::from_secs(t), v)).collect(),
        );
        let done = series
            .time_to_complete(SimTime::ZERO, work, speed)
            .expect("completes");
        let delivered = speed * series.integral(SimTime::ZERO, done);
        // Completion rounds *up* to the next microsecond, so delivered
        // work can only overshoot, by at most one microsecond of the
        // maximum rate.
        prop_assert!(delivered + 1e-9 >= work, "undershoot: {delivered} < {work}");
        prop_assert!(delivered - work <= speed * 2e-6 + 1e-9, "overshoot too large");
    }

    /// Markov load realizations stay within their two configured
    /// levels and are reproducible.
    #[test]
    fn markov_realizations_are_two_level_and_deterministic(
        idle in 0.0f64..1.0,
        busy in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let m = LoadModel::MarkovOnOff {
            idle_avail: idle,
            busy_avail: busy,
            mean_idle: SimTime::from_secs(30),
            mean_busy: SimTime::from_secs(10),
        };
        let a = m.realize(s(10_000.0), seed);
        prop_assert_eq!(&a, &m.realize(s(10_000.0), seed));
        for &(_, v) in a.points() {
            prop_assert!((v - idle).abs() < 1e-12 || (v - busy).abs() < 1e-12);
        }
    }

    /// Any block mesh over the Jacobi grid computes exactly the
    /// sequential answer.
    #[test]
    fn blocked_jacobi_always_matches_sequential(
        row_parts in prop::collection::vec(1usize..8, 1..4),
        col_parts in prop::collection::vec(1usize..8, 1..4),
        sweeps in 1usize..15,
    ) {
        use apples_apps::jacobi2d::BlockedRun;
        let rsum: usize = row_parts.iter().sum();
        let csum: usize = col_parts.iter().sum();
        let n = rsum.max(csum).max(3);
        let mut rows = row_parts.clone();
        let mut cols = col_parts.clone();
        *rows.last_mut().expect("rows") += n - rsum;
        *cols.last_mut().expect("cols") += n - csum;
        let mut seq = Grid::new(n, |r, c| ((r * 5 + c) % 9) as f64);
        let mut blocked = BlockedRun::new(&seq, &rows, &cols);
        seq.run(sweeps);
        blocked.run(sweeps);
        let assembled = blocked.assemble();
        prop_assert_eq!(seq.data(), assembled.as_slice());
    }

    /// Any strip partition of the Jacobi grid computes exactly the
    /// sequential answer.
    #[test]
    fn partitioned_jacobi_always_matches_sequential(
        splits in prop::collection::vec(1usize..12, 1..6),
        sweeps in 1usize..25,
    ) {
        let n: usize = splits.iter().sum::<usize>().max(3);
        // Pad the last strip so the strips cover an n >= 3 grid.
        let mut strips = splits.clone();
        let covered: usize = strips.iter().sum();
        if covered < n {
            *strips.last_mut().expect("strips") += n - covered;
        }
        let mut seq = Grid::new(n, |r, c| (r * 3 + c) as f64 % 7.0);
        let mut par = PartitionedRun::new(&seq, &strips);
        seq.run(sweeps);
        par.run(sweeps);
        let assembled = par.assemble();
        prop_assert_eq!(seq.data(), assembled.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The one-pass imposition sweep in `StepSeries::with_impositions`
    /// reproduces the per-time scan — evaluate every change point by
    /// filtering the full imposition list — bit for bit, on arbitrary
    /// base series and arbitrary (overlapping, abutting, empty,
    /// negative-factor) window sets.
    #[test]
    fn imposition_sweep_matches_per_time_scan(
        base in prop::collection::vec((0u64..200_000, 0.0f64..1.0), 1..8),
        windows in prop::collection::vec(
            (0u64..200_000, 0u64..200_000, -0.5f64..1.5), 0..6),
    ) {
        let ss = StepSeries::from_points(
            base.iter().map(|&(t, v)| (SimTime::from_millis(t), v)).collect(),
        );
        let imps: Vec<Imposition> = windows
            .iter()
            .map(|&(a, b, f)| {
                Imposition::new(SimTime::from_millis(a), SimTime::from_millis(b), f)
            })
            .collect();

        // Oracle: the pre-simcore per-time scan.
        let live: Vec<&Imposition> = imps.iter().filter(|i| i.to > i.from).collect();
        let mut times: Vec<SimTime> = ss.points().iter().map(|&(t, _)| t).collect();
        for imp in &live {
            times.push(imp.from);
            times.push(imp.to);
        }
        times.sort_unstable();
        times.dedup();
        let oracle = StepSeries::from_points(
            times
                .into_iter()
                .map(|t| {
                    let combined: f64 = live
                        .iter()
                        .filter(|i| i.active_at(t))
                        .map(|i| i.factor.max(0.0))
                        .product();
                    (t, ss.value_at(t) * combined)
                })
                .collect(),
        );
        prop_assert_eq!(ss.with_impositions(&imps), oracle);
    }
}
