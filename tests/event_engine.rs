//! Property tests for the simcore event queue: an indexed cancellable
//! queue must behave exactly like the obvious reference model — a flat
//! list popped by minimum `(time, insertion-seq)` — under arbitrary
//! interleavings of push, cancel, reschedule and pop, including FIFO
//! ties at equal timestamps and operations on dead handles.

use proptest::prelude::*;
use simcore::{EventId, EventQueue};

/// Reference model: handle-indexed entries, popped by min `(time, seq)`.
/// `seq` is a global counter bumped on every push *and* reschedule, so a
/// rescheduled event re-enters the FIFO behind existing ties — the
/// documented simcore semantics.
struct Model {
    entries: Vec<Option<(u64, u64, u32)>>, // (time, seq, payload); None = dead
    next_seq: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: u64, payload: u32) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Some((time, seq, payload)));
        self.entries.len() - 1
    }

    fn cancel(&mut self, h: usize) -> Option<u32> {
        self.entries[h].take().map(|(_, _, p)| p)
    }

    fn reschedule(&mut self, h: usize, time: u64) -> bool {
        match self.entries[h] {
            Some((_, _, p)) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.entries[h] = Some((time, seq, p));
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    fn peek_time(&self) -> Option<u64> {
        self.entries
            .iter()
            .flatten()
            .map(|&(t, s, _)| (t, s))
            .min()
            .map(|(t, _)| t)
    }

    fn pop(&mut self) -> Option<(u64, usize, u32)> {
        let (h, &(t, _, p)) = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (i, v)))
            .min_by_key(|&(_, &(t, s, _))| (t, s))?;
        self.entries[h] = None;
        Some((t, h, p))
    }
}

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Cancel(usize),
    Reschedule(usize, u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Times drawn from a tiny range so equal timestamps (FIFO ties) are
    // common; handle selectors are reduced mod the live universe later,
    // so any usize is valid.
    prop_oneof![
        4 => (0u64..16).prop_map(Op::Push),
        2 => (0usize..1_000_000).prop_map(Op::Cancel),
        2 => (0usize..1_000_000, 0u64..16).prop_map(|(h, t)| Op::Reschedule(h, t)),
        3 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every observable of the indexed queue — pop order, pop payloads,
    /// returned handles, cancel results, reschedule results, live
    /// counts, peeked times — matches the reference model under random
    /// op interleavings, and a final drain empties both identically.
    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut q: EventQueue<u64, u32> = EventQueue::new();
        let mut m = Model::new();
        // ids[h] is the real queue's handle for model handle h.
        let mut ids: Vec<EventId> = Vec::new();
        let mut next_payload: u32 = 0;

        for op in ops {
            match op {
                Op::Push(t) => {
                    let p = next_payload;
                    next_payload += 1;
                    ids.push(q.schedule(t, p));
                    m.push(t, p);
                }
                Op::Cancel(sel) => {
                    if !ids.is_empty() {
                        let h = sel % ids.len();
                        prop_assert_eq!(q.cancel(ids[h]), m.cancel(h));
                    }
                }
                Op::Reschedule(sel, t) => {
                    if !ids.is_empty() {
                        let h = sel % ids.len();
                        prop_assert_eq!(q.reschedule(ids[h], t), m.reschedule(h, t));
                    }
                }
                Op::Pop => {
                    let got = q.pop();
                    let want = m.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some((t, id, p)), Some((wt, wh, wp))) => {
                            prop_assert_eq!((t, p), (wt, wp));
                            prop_assert_eq!(Some(id), ids.get(wh).copied());
                        }
                        (got, want) => {
                            prop_assert!(false, "pop diverged: queue {got:?}, model {want:?}");
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), m.len());
            prop_assert_eq!(q.peek_time(), m.peek_time());
        }

        // Drain: remaining events come out in identical order.
        while let Some((wt, wh, wp)) = m.pop() {
            let Some((t, id, p)) = q.pop() else {
                prop_assert!(false, "queue drained early; model still has {:?}", (wt, wh, wp));
                unreachable!()
            };
            prop_assert_eq!((t, p), (wt, wp));
            prop_assert_eq!(Some(id), ids.get(wh).copied());
        }
        prop_assert!(q.pop().is_none());
        prop_assert!(q.is_empty());
    }

    /// Dead handles stay dead: once an event is popped or cancelled, its
    /// id never matches again, even after its slot is reused.
    #[test]
    fn dead_handles_never_alias(times in prop::collection::vec(0u64..8, 1..40)) {
        let mut q: EventQueue<u64, usize> = EventQueue::new();
        let mut dead: Vec<EventId> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let id = q.schedule(t, i);
            if i % 2 == 0 {
                prop_assert_eq!(q.cancel(id), Some(i));
                dead.push(id);
            }
            // Slot reuse happens on the next schedule; earlier dead ids
            // must not resolve against the new occupant.
            for &d in &dead {
                prop_assert!(!q.contains(d));
                prop_assert_eq!(q.cancel(d), None);
                prop_assert!(!q.reschedule(d, 0));
                prop_assert_eq!(q.time_of(d), None);
            }
        }
    }
}
